"""Tests for the distributed sweep subsystem (``repro.cluster``).

Covers the shard planner (determinism, coverage, cost calibration), the
three result sinks (round-trips and cross-format merge equality, crash
tolerance), the coordinator/worker lease protocol (work stealing, stale
lease reclaim after a simulated worker death) and — the acceptance bar —
field-for-field equivalence between a serial ``SweepRunner`` run and a
sharded run with 3 shards, stealing and a mid-grid crash, under both the
``density`` and ``analytic`` backends.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.cluster import (
    ClusterCoordinator,
    ClusterPlan,
    RecordedCostModel,
    ShardPlan,
    StaticCostModel,
    load_results,
    merge_results,
    open_sink,
    plan_shards,
    run_sharded_sweep,
)
from repro.cluster.coordinator import done_path, lease_path
from repro.cluster.sinks import SinkError, part_name
from repro.cluster.worker import ClusterWorker
from repro.runtime import (
    ScenarioSpec,
    SweepResult,
    SweepRunner,
    run_sweep,
    single_kind_scenarios,
)

DURATION = 0.05


def grid(count=None, backend=None, loads=("Low", "High"),
         max_pairs_options=(1, 3)) -> list[ScenarioSpec]:
    specs = single_kind_scenarios(
        "Lab", kinds=("NL", "CK", "MD"), loads=loads,
        max_pairs_options=max_pairs_options, origins=("A", "B"),
        include_md_k255=False, attempt_batch_size=40, backend=backend)
    return specs if count is None else specs[:count]


def backdate_stale_leases(cluster_dir, seconds=3600.0) -> int:
    """Age every lease of an unfinished scenario past any timeout."""
    past = time.time() - seconds
    aged = 0
    for lease in (cluster_dir / "tasks").glob("*.lease"):
        index = int(lease.stem)
        if not done_path(cluster_dir, index).exists():
            os.utime(lease, (past, past))
            aged += 1
    return aged


def drive_workers(coordinator, workers, max_rounds=500) -> None:
    """Round-robin workers' step() until the grid completes.

    When nobody can make progress (all remaining work is behind the crashed
    worker's live lease), age the stale leases so the timeout "passes"
    without wall-clock sleeping.
    """
    for _ in range(max_rounds):
        progressed = False
        for worker in workers:
            if worker.step() is not None:
                progressed = True
        if coordinator.is_complete():
            return
        if not progressed:
            assert backdate_stale_leases(coordinator.cluster_dir) > 0, \
                "no progress and no stale lease to reclaim: deadlock"
    raise AssertionError("grid did not complete")


# --------------------------------------------------------------------------- #
# Shard planner
# --------------------------------------------------------------------------- #
class TestShardPlanner:
    def test_plan_covers_every_scenario_exactly_once(self):
        specs = grid()
        plan = plan_shards(specs, 3, DURATION)
        seen = sorted(index for shard in plan.shards for index in shard)
        assert seen == list(range(len(specs)))
        assert plan.num_shards == 3
        assert len(plan.scenario_costs) == len(specs)

    def test_plan_is_deterministic(self):
        specs = grid()
        first = plan_shards(specs, 4, DURATION)
        second = plan_shards(specs, 4, DURATION)
        assert first.shards == second.shards
        assert first.shard_costs == second.shard_costs

    def test_plan_balances_heterogeneous_costs(self):
        # The MD k3 scenarios are much costlier than NL k1 under the static
        # model; LPT must keep the shard cost spread narrow.
        specs = grid()
        plan = plan_shards(specs, 3, DURATION)
        assert max(plan.shard_costs) <= 1.5 * min(plan.shard_costs)

    def test_more_shards_than_scenarios_leaves_empty_shards(self):
        specs = grid(count=2)
        plan = plan_shards(specs, 5, DURATION)
        assert plan.num_scenarios == 2
        assert sum(1 for shard in plan.shards if not shard) == 3

    def test_shards_are_ordered_costliest_first(self):
        specs = grid()
        plan = plan_shards(specs, 3, DURATION)
        for shard in plan.shards:
            costs = [plan.scenario_costs[index] for index in shard]
            assert costs == sorted(costs, reverse=True)

    def test_plan_round_trips_through_json(self):
        plan = plan_shards(grid(), 3, DURATION)
        again = ShardPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert again == plan

    def test_static_model_ranks_k255_and_density_costlier(self):
        model = StaticCostModel()
        k255 = single_kind_scenarios(
            "Lab", kinds=("MD",), loads=("High",), max_pairs_options=(255,),
            origins=("A",), include_md_k255=False, backend="analytic")[0]
        k1 = single_kind_scenarios(
            "Lab", kinds=("MD",), loads=("High",), max_pairs_options=(1,),
            origins=("A",), include_md_k255=False, backend="analytic")[0]
        assert model.estimate(k255, 1.0) > 10 * model.estimate(k1, 1.0)
        dense = single_kind_scenarios(
            "Lab", kinds=("MD",), loads=("High",), max_pairs_options=(1,),
            origins=("A",), include_md_k255=False, backend="density")[0]
        assert model.estimate(dense, 1.0) > model.estimate(k1, 1.0)

    def test_recorded_model_persists_and_reloads(self, tmp_path):
        specs = grid(count=4, backend="analytic")
        result = run_sweep(specs, DURATION, master_seed=3)
        model = RecordedCostModel.from_results([result])
        path = model.save(tmp_path / "cost_model.json")
        again = RecordedCostModel.load(path)
        assert again.observations() == model.observations()
        for spec in specs:
            assert again.estimate(spec, 2.0) == model.estimate(spec, 2.0)
        # Best-effort loading: absent -> None, corrupt -> None (planning
        # must survive a torn cost model).
        assert RecordedCostModel.load_if_present(tmp_path / "nope.json") is None
        path.write_text("{torn")
        assert RecordedCostModel.load_if_present(path) is None

    def test_recorded_model_bounds_its_history(self):
        model = RecordedCostModel()
        specs = grid(count=1, backend="analytic")
        result = run_sweep(specs, DURATION, master_seed=3)
        for _ in range(3 * RecordedCostModel.MAX_OBSERVATIONS_PER_KEY):
            model.observe(result.outcomes[0])
        assert model.observations() == RecordedCostModel.MAX_OBSERVATIONS_PER_KEY

    def test_coordinator_autoloads_and_records_cost_model(self, tmp_path):
        specs = grid(count=4, backend="analytic")
        first = ClusterCoordinator(specs, DURATION, tmp_path / "a",
                                   master_seed=77, num_shards=2)
        assert first.effective_cost_model() is None  # nothing persisted yet
        result = first.run_local()
        path = first.record_costs(result)  # idempotent wrt run_local's own
        assert path == first.cost_model_path() and path.exists()

        # A later coordinator on the same directory plans from the
        # calibrated model automatically.
        second = ClusterCoordinator(specs, DURATION, tmp_path / "a",
                                    master_seed=77, num_shards=2)
        model = second.effective_cost_model()
        assert isinstance(model, RecordedCostModel)
        assert model.observations() >= 4
        for spec, outcome in zip(specs, result.outcomes):
            assert model.recorded_rate(spec) is not None
        # With a shared cache dir, the model lives there instead — shared
        # across every sweep using that cache.
        cached = ClusterCoordinator(specs, DURATION, tmp_path / "b",
                                    master_seed=77, num_shards=2,
                                    cache_dir=tmp_path / "cache")
        assert cached.cost_model_path().parent == tmp_path / "cache"
        # An all-from-cache merge yields no usable observation.
        assert RecordedCostModel().calibrate(result) >= 4
        for outcome in result.outcomes:
            outcome.from_cache = True
        assert first.record_costs(result) is None

    def test_recorded_model_calibrates_from_prior_sweeps(self):
        specs = grid(count=4, backend="analytic")
        result = run_sweep(specs, DURATION, master_seed=3)
        model = RecordedCostModel.from_results([result])
        assert model.observations() == 4
        for spec, outcome in zip(specs, result.outcomes):
            # Recorded rate scales linearly with the planned duration.
            assert model.estimate(spec, 2.0) == pytest.approx(
                2.0 * outcome.wall_time / DURATION)
        # Unseen scenario: falls back to the (rescaled) static heuristic.
        unseen = grid(backend="analytic")[-1]
        assert unseen.name not in {spec.name for spec in specs}
        assert model.estimate(unseen, 2.0) > 0
        # Cached outcomes carry disk-read wall-clock, not simulation cost.
        cached = result.outcomes[0]
        cached.from_cache = True
        assert not model.observe(cached)


# --------------------------------------------------------------------------- #
# Sinks
# --------------------------------------------------------------------------- #
class TestSinks:
    @pytest.fixture(scope="class")
    def outcomes(self):
        specs = grid(count=3, backend="analytic")
        result = run_sweep(specs, DURATION, master_seed=11)
        return result

    def sink_path(self, tmp_path, kind):
        return tmp_path / part_name(kind, "w0")

    @pytest.mark.parametrize("kind", ["json", "jsonl", "columnar"])
    def test_round_trip(self, outcomes, tmp_path, kind):
        path = self.sink_path(tmp_path, kind)
        sink = open_sink(kind, path, master_seed=outcomes.master_seed,
                         duration=outcomes.duration)
        for index, outcome in enumerate(outcomes.outcomes):
            sink.write(index, outcome)
        sink.close()
        assert [o for _, o in load_results(path)] == outcomes.outcomes
        merged = merge_results([path],
                               expected_count=len(outcomes.outcomes))
        assert merged.outcomes == outcomes.outcomes
        assert merged.master_seed == outcomes.master_seed
        assert merged.duration == outcomes.duration

    def test_all_formats_merge_identically(self, outcomes, tmp_path):
        merged = {}
        for kind in ("json", "jsonl", "columnar"):
            path = self.sink_path(tmp_path / kind, kind)
            path.parent.mkdir()
            sink = open_sink(kind, path, master_seed=outcomes.master_seed,
                             duration=outcomes.duration)
            for index, outcome in enumerate(outcomes.outcomes):
                sink.write(index, outcome)
            sink.close()
            merged[kind] = merge_results([path])
        assert merged["json"] == merged["jsonl"] == merged["columnar"]

    def test_mixed_format_parts_merge(self, outcomes, tmp_path):
        # Scenario 0+1 through JSONL, scenario 2 through columnar — the
        # merge does not care which worker used which sink.
        jsonl = self.sink_path(tmp_path, "jsonl")
        sink = open_sink("jsonl", jsonl, master_seed=outcomes.master_seed,
                         duration=outcomes.duration)
        sink.write(0, outcomes.outcomes[0])
        sink.write(1, outcomes.outcomes[1])
        sink.close()
        columnar = tmp_path / part_name("columnar", "w1")
        sink = open_sink("columnar", columnar,
                         master_seed=outcomes.master_seed,
                         duration=outcomes.duration)
        sink.write(2, outcomes.outcomes[2])
        sink.close()
        merged = merge_results([jsonl, columnar], expected_count=3)
        assert merged.outcomes == outcomes.outcomes

    def test_canonical_sweep_result_file_is_mergeable(self, outcomes,
                                                      tmp_path):
        # The pre-cluster `SweepResult.save` format loads as a part with
        # indices implied by position.
        path = tmp_path / "serial.json"
        outcomes.save(path)
        merged = merge_results([path], expected_count=len(outcomes.outcomes))
        assert merged.outcomes == outcomes.outcomes

    def test_jsonl_tolerates_truncated_tail(self, outcomes, tmp_path):
        path = self.sink_path(tmp_path, "jsonl")
        sink = open_sink("jsonl", path, master_seed=1, duration=DURATION)
        sink.write(0, outcomes.outcomes[0])
        sink.write(1, outcomes.outcomes[1])
        sink.close()
        text = path.read_text()
        path.write_text(text[:-40])  # crash mid-write of the last record
        loaded = load_results(path)
        assert [index for index, _ in loaded] == [0]

    def test_jsonl_resume_repairs_torn_tail(self, outcomes, tmp_path):
        # A worker restarting onto its own crashed part must not append to
        # the torn trailing line (that would fuse two records into one
        # corrupt line and lose the re-executed scenario).
        path = self.sink_path(tmp_path, "jsonl")
        sink = open_sink("jsonl", path, master_seed=outcomes.master_seed,
                         duration=outcomes.duration)
        sink.write(0, outcomes.outcomes[0])
        sink.write(1, outcomes.outcomes[1])
        sink.close()
        path.write_text(path.read_text()[:-40])  # crash tore record 1
        resumed = open_sink("jsonl", path, master_seed=outcomes.master_seed,
                            duration=outcomes.duration)
        resumed.write(1, outcomes.outcomes[1])
        resumed.close()
        loaded = load_results(path)
        assert [index for index, _ in loaded] == [0, 1]
        assert [o for _, o in loaded] == outcomes.outcomes[:2]

    def test_failed_outcome_survives_every_format(self, tmp_path):
        from repro.core.messages import Priority
        from repro.hardware.parameters import lab_scenario
        from repro.runtime import WorkloadSpec

        broken = ScenarioSpec(
            name="broken", scenario=lab_scenario(),
            workload=(WorkloadSpec(priority=Priority.MD, load_fraction=0.9),),
            scheduler="NoSuchScheduler")
        result = run_sweep([broken], DURATION, master_seed=2)
        assert not result.outcomes[0].ok
        for kind in ("json", "jsonl", "columnar"):
            path = self.sink_path(tmp_path / kind, kind)
            path.parent.mkdir()
            sink = open_sink(kind, path, master_seed=2, duration=DURATION)
            sink.write(0, result.outcomes[0])
            sink.close()
            (loaded,) = [o for _, o in load_results(path)]
            assert loaded == result.outcomes[0]
            assert "NoSuchScheduler" in loaded.error

    def test_columnar_flushes_append_only_segments(self, outcomes, tmp_path):
        # Each flush seals a new segment; earlier segments are never
        # rewritten (the v1 format rewrote every column on every flush).
        path = tmp_path / part_name("columnar", "w0")
        sink = open_sink("columnar", path, master_seed=outcomes.master_seed,
                         duration=outcomes.duration)
        sink.write(0, outcomes.outcomes[0])  # flush_every=1: seals seg 0
        first_segment = path / "seg-000000" / "index.json"
        before = first_segment.read_bytes()
        before_mtime = first_segment.stat().st_mtime_ns
        sink.write(1, outcomes.outcomes[1])
        sink.write(2, outcomes.outcomes[2])
        sink.close()
        assert first_segment.read_bytes() == before
        assert first_segment.stat().st_mtime_ns == before_mtime
        segments = sorted(p.name for p in path.iterdir() if p.is_dir())
        assert segments == ["seg-000000", "seg-000001", "seg-000002"]
        manifest = json.loads((path / "manifest.json").read_text())
        assert [s["rows"] for s in manifest["segments"]] == [1, 1, 1]
        assert [o for _, o in load_results(path)] == outcomes.outcomes

    def test_columnar_resume_appends_new_segments(self, outcomes, tmp_path):
        path = tmp_path / part_name("columnar", "w0")
        sink = open_sink("columnar", path, master_seed=outcomes.master_seed,
                         duration=outcomes.duration)
        sink.write(0, outcomes.outcomes[0])
        sink.close()
        # A restarted worker resumes the same part: sealed segments are
        # adopted, new rows land in fresh segments.
        resumed = open_sink("columnar", path,
                            master_seed=outcomes.master_seed,
                            duration=outcomes.duration)
        resumed.write(1, outcomes.outcomes[1])
        resumed.write(2, outcomes.outcomes[2])
        resumed.close()
        assert [o for _, o in load_results(path)] == outcomes.outcomes
        merged = merge_results([path], expected_count=3)
        assert merged.outcomes == outcomes.outcomes

    def test_columnar_orphaned_segment_is_ignored(self, outcomes, tmp_path):
        # A crash between sealing a segment's columns and updating the
        # manifest leaves an unlisted directory: merge-on-read skips it.
        path = tmp_path / part_name("columnar", "w0")
        sink = open_sink("columnar", path, master_seed=outcomes.master_seed,
                         duration=outcomes.duration)
        sink.write(0, outcomes.outcomes[0])
        sink.close()
        orphan = path / "seg-000001"
        orphan.mkdir()
        (orphan / "index.json").write_text("[99]")
        loaded = load_results(path)
        assert [index for index, _ in loaded] == [0]

    def test_columnar_v1_part_still_loads(self, outcomes, tmp_path):
        # Pre-chunking parts (single columns/ dir, no segment list) remain
        # readable and merge identically.
        import dataclasses

        from repro.analysis.metrics import MetricsSummary
        from repro.runtime.cache import CACHE_VERSION, atomic_write_text
        from repro.runtime.sweep import ScenarioOutcome

        path = tmp_path / part_name("columnar", "w0")
        columns_dir = path / "columns"
        columns_dir.mkdir(parents=True)
        rows = list(enumerate(outcomes.outcomes))
        outcome_fields = [f.name for f in dataclasses.fields(ScenarioOutcome)
                          if f.name != "summary"]
        columns = {"index": [i for i, _ in rows]}
        for name in outcome_fields:
            columns[name] = [getattr(o, name) for _, o in rows]
        for name in [f.name for f in dataclasses.fields(MetricsSummary)]:
            columns[f"summary.{name}"] = [getattr(o.summary, name)
                                          for _, o in rows]
        for name, values in columns.items():
            atomic_write_text(columns_dir / f"{name}.json",
                              json.dumps(values))
        atomic_write_text(path / "manifest.json", json.dumps({
            "format": "sweep-columnar/v1",
            "cache_version": CACHE_VERSION,
            "master_seed": outcomes.master_seed,
            "duration": outcomes.duration,
            "rows": len(rows),
            "columns": sorted(columns),
        }))
        assert [o for _, o in load_results(path)] == outcomes.outcomes
        merged = merge_results([path], expected_count=len(rows))
        assert merged.outcomes == outcomes.outcomes

    def test_merge_detects_missing_scenarios(self, outcomes, tmp_path):
        path = self.sink_path(tmp_path, "jsonl")
        sink = open_sink("jsonl", path, master_seed=outcomes.master_seed,
                         duration=outcomes.duration)
        sink.write(0, outcomes.outcomes[0])
        sink.close()
        with pytest.raises(SinkError, match="missing"):
            merge_results([path], expected_count=3)

    def test_merge_rejects_diverging_duplicates(self, outcomes, tmp_path):
        first = self.sink_path(tmp_path, "jsonl")
        sink = open_sink("jsonl", first, master_seed=outcomes.master_seed,
                         duration=outcomes.duration)
        sink.write(0, outcomes.outcomes[0])
        sink.close()
        second = tmp_path / part_name("jsonl", "w1")
        sink = open_sink("jsonl", second, master_seed=outcomes.master_seed,
                         duration=outcomes.duration)
        sink.write(0, outcomes.outcomes[1])  # different result, same index
        sink.close()
        with pytest.raises(SinkError, match="determinism"):
            merge_results([first, second])

    def test_merge_rejects_mismatched_sweeps(self, outcomes, tmp_path):
        path = self.sink_path(tmp_path, "jsonl")
        sink = open_sink("jsonl", path, master_seed=outcomes.master_seed,
                         duration=outcomes.duration)
        sink.write(0, outcomes.outcomes[0])
        sink.close()
        with pytest.raises(SinkError, match="master_seed"):
            merge_results([path], master_seed=outcomes.master_seed + 1)


# --------------------------------------------------------------------------- #
# Cluster execution
# --------------------------------------------------------------------------- #
class TestClusterProtocol:
    def make_cluster(self, tmp_path, specs, num_shards=3, sink="jsonl",
                     **kwargs):
        coordinator = ClusterCoordinator(
            specs, DURATION, tmp_path / "cluster", master_seed=77,
            num_shards=num_shards, sink=sink, lease_timeout=120.0, **kwargs)
        coordinator.write_plan()
        return coordinator

    def test_plan_file_round_trips(self, tmp_path):
        specs = grid(count=4, backend="analytic")
        coordinator = self.make_cluster(tmp_path, specs)
        plan = ClusterPlan.load(coordinator.cluster_dir)
        assert plan.specs == specs
        assert plan.shard_plan == coordinator.plan()
        assert plan.seeds == SweepRunner(specs, DURATION,
                                         master_seed=77).scenario_seeds()

    def test_write_plan_refuses_a_different_sweeps_state(self, tmp_path):
        specs = grid(count=4, backend="analytic")
        coordinator = self.make_cluster(tmp_path, specs)
        ClusterWorker(coordinator.cluster_dir, "w", shard=0).run()
        assert coordinator.is_complete()
        # Re-planning the identical sweep resumes (done markers stay valid).
        again = ClusterCoordinator(
            specs, DURATION, tmp_path / "cluster", master_seed=77,
            num_shards=3, sink="jsonl", lease_timeout=120.0)
        again.write_plan()
        assert again.is_complete()
        # A *different* sweep into the same directory must not silently
        # inherit the old done markers and hand back the old results.
        other = ClusterCoordinator(
            specs, 2 * DURATION, tmp_path / "cluster", master_seed=77,
            num_shards=3, sink="jsonl", lease_timeout=120.0)
        with pytest.raises(RuntimeError, match="different sweep plan"):
            other.write_plan()
        other.write_plan(reset=True)
        assert not other.is_complete()
        assert other.result_parts() == []

    def test_replan_resumes_despite_cost_model_drift(self, tmp_path):
        # A recorded cost model changes shard costs between runs; that must
        # not be mistaken for a "different sweep" (it would force --reset
        # and discard completed work).
        specs = grid(count=4, backend="analytic")
        coordinator = self.make_cluster(tmp_path, specs)
        ClusterWorker(coordinator.cluster_dir, "w", shard=0).run()
        result = coordinator.merge()
        assert coordinator.record_costs(result) is not None

        resumed = ClusterCoordinator(
            specs, DURATION, tmp_path / "cluster", master_seed=77,
            num_shards=3, sink="jsonl", lease_timeout=120.0)
        model = resumed.effective_cost_model()
        assert model is not None and model.observations() >= 4
        assert resumed.plan().scenario_costs != coordinator.plan().scenario_costs
        resumed.write_plan()  # same sweep identity: resumes, no reset needed
        assert resumed.is_complete()
        assert resumed.merge().outcomes == result.outcomes

    def test_single_worker_drains_all_shards(self, tmp_path):
        specs = grid(count=6, backend="analytic")
        coordinator = self.make_cluster(tmp_path, specs)
        worker = ClusterWorker(coordinator.cluster_dir, "solo", shard=0)
        executed = worker.run()
        assert executed == 6  # stole shards 1 and 2 after finishing shard 0
        assert coordinator.is_complete()
        merged = coordinator.merge()
        serial = SweepRunner(specs, DURATION, master_seed=77).run()
        assert merged.outcomes == serial.outcomes

    def test_no_steal_worker_stays_in_its_shard(self, tmp_path):
        specs = grid(count=6, backend="analytic")
        coordinator = self.make_cluster(tmp_path, specs)
        worker = ClusterWorker(coordinator.cluster_dir, "homebody",
                               shard=1, steal=False)
        worker.run(wait_for_stragglers=False)
        own = set(coordinator.plan().shards[1])
        assert set(worker.executed) == own
        assert not coordinator.is_complete()

    def test_thieves_rob_the_slowest_shard_first(self, tmp_path):
        specs = grid(backend="analytic")
        coordinator = self.make_cluster(tmp_path, specs, num_shards=3)
        plan = coordinator.plan()
        # Finish shards 1 and 2 entirely, leaving shard 0 untouched; a
        # fresh thief must then steal from shard 0 (the only, hence
        # slowest, victim) starting at the cheap tail.
        for shard in (1, 2):
            ClusterWorker(coordinator.cluster_dir, f"w{shard}", shard=shard,
                          steal=False).run(wait_for_stragglers=False)
        thief = ClusterWorker(coordinator.cluster_dir, "thief", shard=1)
        stolen = thief.step()
        assert stolen == plan.shards[0][-1]  # cheapest remaining of shard 0

    def test_crashed_lease_is_reclaimed(self, tmp_path):
        specs = grid(count=6, backend="analytic")
        coordinator = self.make_cluster(tmp_path, specs)
        victim = ClusterWorker(coordinator.cluster_dir, "victim", shard=0,
                               crash_after_claims=1)
        assert victim.step() is None and victim.crashed
        crashed_index = coordinator.plan().shards[0][0]
        assert lease_path(coordinator.cluster_dir, crashed_index).exists()
        rescuer = ClusterWorker(coordinator.cluster_dir, "rescuer", shard=0)
        drive_workers(coordinator, [rescuer])
        assert crashed_index in rescuer.executed
        merged = coordinator.merge()
        serial = SweepRunner(specs, DURATION, master_seed=77).run()
        assert merged.outcomes == serial.outcomes

    def test_live_lease_is_not_stolen(self, tmp_path):
        specs = grid(count=6, backend="analytic")
        coordinator = self.make_cluster(tmp_path, specs)
        holder = ClusterWorker(coordinator.cluster_dir, "holder", shard=0,
                               crash_after_claims=1)
        holder.step()  # holds a live (fresh) lease on shard 0's head
        held = coordinator.plan().shards[0][0]
        other = ClusterWorker(coordinator.cluster_dir, "other", shard=0)
        executed = other.run(wait_for_stragglers=False)
        assert held not in other.executed
        assert executed == len(specs) - 1

    def test_status_reports_progress(self, tmp_path):
        specs = grid(count=6, backend="analytic")
        coordinator = self.make_cluster(tmp_path, specs)
        assert coordinator.status()["total"]["pending"] == 6
        ClusterWorker(coordinator.cluster_dir, "w", shard=0).run()
        status = coordinator.status()
        assert status["total"]["done"] == 6
        assert coordinator.is_complete()

    def test_workers_share_the_resume_cache(self, tmp_path):
        specs = grid(count=4, backend="analytic")
        cache_dir = tmp_path / "cache"
        serial = run_sweep(specs, DURATION, master_seed=77,
                           cache_dir=cache_dir)
        coordinator = self.make_cluster(tmp_path, specs,
                                        cache_dir=cache_dir)
        worker = ClusterWorker(coordinator.cluster_dir, "w", shard=0)
        worker.run()
        assert worker.cache_report.counts()["hits"] == 4
        merged = coordinator.merge()
        assert merged.outcomes == serial.outcomes


class TestSerialShardedEquivalence:
    """Acceptance criterion: ≥24 scenarios, ≥3 shards, stealing enabled,
    one simulated worker crash mid-grid — merged result field-for-field
    identical to the serial ``SweepRunner``, under both backends."""

    @pytest.mark.parametrize("backend,sink", [("density", "jsonl"),
                                              ("analytic", "columnar")])
    def test_sharded_crashy_sweep_equals_serial(self, tmp_path, backend,
                                                sink):
        specs = grid(backend=backend)
        assert len(specs) >= 24
        serial = SweepRunner(specs, DURATION, master_seed=77).run()

        coordinator = ClusterCoordinator(
            specs, DURATION, tmp_path / "cluster", master_seed=77,
            num_shards=3, sink=sink, lease_timeout=120.0)
        coordinator.write_plan()
        workers = [
            ClusterWorker(coordinator.cluster_dir, "w0", shard=0,
                          crash_after_claims=3),
            ClusterWorker(coordinator.cluster_dir, "w1", shard=1),
            ClusterWorker(coordinator.cluster_dir, "w2", shard=2),
        ]
        drive_workers(coordinator, workers)
        for worker in workers:
            worker.close()

        assert workers[0].crashed  # the simulated death actually happened
        merged = coordinator.merge()
        # Field-for-field: dataclass equality covers every compared field
        # of every outcome (summaries, seeds, event counts, errors, ...).
        assert merged.master_seed == serial.master_seed
        assert merged.duration == serial.duration
        assert merged.outcomes == serial.outcomes
        assert merged == serial
        # The survivors stole from the crashed worker's shard.
        shard0 = set(coordinator.plan().shards[0])
        stolen = shard0 & set(workers[1].executed + workers[2].executed)
        assert stolen

    def test_run_local_processes_match_serial(self, tmp_path):
        # The multiprocess convenience path (real worker processes through
        # the same protocol) on a smaller analytic grid.
        specs = grid(count=8, backend="analytic")
        serial = SweepRunner(specs, DURATION, master_seed=77).run()
        merged = run_sharded_sweep(specs, DURATION, tmp_path / "cluster",
                                   master_seed=77, num_shards=2)
        assert merged.outcomes == serial.outcomes
