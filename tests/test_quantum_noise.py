"""Unit tests for noise channels, fidelity and QBER relations."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.quantum import gates, noise
from repro.quantum.density import DensityMatrix
from repro.quantum.fidelity import (
    BELL_CORRELATIONS,
    fidelity,
    fidelity_from_qber,
    fidelity_to_pure,
    qber_all_bases,
    qber_from_fidelity_werner,
    qber_from_state,
    werner_state,
)
from repro.quantum.measurement import readout_kraus
from repro.quantum.states import BellIndex, bell_state, ket0, ket_plus


class TestNoiseChannels:
    @pytest.mark.parametrize("p", [0.0, 0.1, 0.5, 1.0])
    def test_dephasing_is_trace_preserving(self, p):
        assert noise.is_trace_preserving(noise.dephasing_kraus(p))

    @pytest.mark.parametrize("f", [0.0, 0.5, 0.9, 1.0])
    def test_depolarizing_is_trace_preserving(self, f):
        assert noise.is_trace_preserving(noise.depolarizing_kraus(f))

    @pytest.mark.parametrize("p", [0.0, 0.3, 1.0])
    def test_amplitude_damping_is_trace_preserving(self, p):
        assert noise.is_trace_preserving(noise.amplitude_damping_kraus(p))

    def test_t1_t2_is_trace_preserving(self):
        kraus = noise.t1_t2_kraus(1e-3, t1=2.86e-3, t2=1.0e-3)
        assert noise.is_trace_preserving(kraus)

    def test_t1_t2_with_infinite_times_is_identity(self):
        dm = DensityMatrix.from_ket(ket_plus())
        dm.apply_kraus(noise.t1_t2_kraus(1.0, t1=math.inf, t2=math.inf))
        assert dm.fidelity_to_pure(ket_plus()) == pytest.approx(1.0)

    def test_dephasing_destroys_coherence(self):
        dm = DensityMatrix.from_ket(ket_plus())
        dm.apply_kraus(noise.dephasing_kraus(0.5))
        # Complete dephasing: |+> becomes maximally mixed.
        assert dm.purity() == pytest.approx(0.5)

    def test_amplitude_damping_decays_excited_state(self):
        dm = DensityMatrix.from_ket(np.array([0.0, 1.0], dtype=complex))
        dm.apply_kraus(noise.amplitude_damping_kraus(1.0))
        assert dm.fidelity_to_pure(ket0()) == pytest.approx(1.0)

    def test_t2_decay_reduces_bell_fidelity(self):
        dm = DensityMatrix.from_ket(bell_state(BellIndex.PSI_PLUS))
        dm.apply_kraus(noise.t1_t2_kraus(0.5e-3, t1=math.inf, t2=1e-3),
                       qubits=[0])
        f = dm.fidelity_to_pure(bell_state(BellIndex.PSI_PLUS))
        assert 0.5 < f < 1.0

    def test_longer_storage_gives_lower_fidelity(self):
        fidelities = []
        for duration in (1e-4, 5e-4, 2e-3):
            dm = DensityMatrix.from_ket(bell_state(BellIndex.PSI_PLUS))
            kraus = noise.t1_t2_kraus(duration, t1=2.86e-3, t2=1e-3)
            dm.apply_kraus(kraus, qubits=[0])
            fidelities.append(dm.fidelity_to_pure(bell_state(BellIndex.PSI_PLUS)))
        assert fidelities[0] > fidelities[1] > fidelities[2]

    def test_compose_kraus_is_trace_preserving(self):
        combined = noise.compose_kraus(noise.dephasing_kraus(0.2),
                                       noise.amplitude_damping_kraus(0.1))
        assert noise.is_trace_preserving(combined)

    def test_invalid_probability_raises(self):
        with pytest.raises(ValueError):
            noise.dephasing_kraus(1.5)
        with pytest.raises(ValueError):
            noise.amplitude_damping_kraus(-0.1)

    def test_phase_std_dephasing_limits(self):
        assert noise.dephasing_probability_from_phase_std(0.0) == 0.0
        small = noise.dephasing_probability_from_phase_std(0.05)
        large = noise.dephasing_probability_from_phase_std(3.0)
        assert small < large <= 0.5

    def test_nuclear_dephasing_per_attempt_scales_with_alpha(self):
        delta_omega = 2 * math.pi * 377e3
        tau = 82e-9
        low = noise.nuclear_dephasing_per_attempt(0.1, delta_omega, tau)
        high = noise.nuclear_dephasing_per_attempt(0.5, delta_omega, tau)
        assert 0 < low < high < 0.5


class TestReadout:
    def test_readout_kraus_complete(self):
        m0, m1 = readout_kraus(0.95, 0.995)
        total = m0.conj().T @ m0 + m1.conj().T @ m1
        assert np.allclose(total, np.eye(2))

    def test_readout_asymmetry(self, rng):
        # A |1> state should rarely be misread (f1 = 0.995), while a |0> state
        # is misread more often (f0 = 0.95).
        m0, m1 = readout_kraus(0.95, 0.995)
        dm = DensityMatrix.from_ket(ket0())
        p_wrong_for_zero = dm.outcome_probability(m1.conj().T @ m1, qubits=[0])
        assert p_wrong_for_zero == pytest.approx(0.05)

    def test_invalid_fidelity_raises(self):
        with pytest.raises(ValueError):
            readout_kraus(1.2, 0.9)


class TestFidelityAndQber:
    def test_perfect_state_has_unit_fidelity(self):
        ket = bell_state(BellIndex.PSI_PLUS)
        assert fidelity_to_pure(np.outer(ket, ket.conj()), ket) == pytest.approx(1.0)

    def test_uhlmann_fidelity_matches_pure_case(self):
        rho = werner_state(0.85)
        ket = bell_state(BellIndex.PSI_PLUS)
        sigma = np.outer(ket, ket.conj())
        assert fidelity(rho, sigma) == pytest.approx(
            fidelity_to_pure(rho, ket), abs=1e-6)

    @pytest.mark.parametrize("target", list(BellIndex))
    def test_qber_zero_for_ideal_bell_states(self, target):
        ket = bell_state(target)
        rho = np.outer(ket, ket.conj())
        for basis in ("X", "Y", "Z"):
            assert qber_from_state(rho, basis, target=target) == pytest.approx(
                0.0, abs=1e-10)

    def test_qber_fidelity_relation_for_werner_states(self):
        for f in (0.6, 0.75, 0.9):
            rho = werner_state(f, BellIndex.PSI_PLUS)
            qbers = qber_all_bases(rho, BellIndex.PSI_PLUS)
            assert fidelity_from_qber(qbers) == pytest.approx(f, abs=1e-9)
            for value in qbers.values():
                assert value == pytest.approx(qber_from_fidelity_werner(f),
                                              abs=1e-9)

    def test_bell_correlation_table_is_consistent(self):
        # Directly verify the correlation signs against measurement statistics.
        for target, signs in BELL_CORRELATIONS.items():
            ket = bell_state(target)
            rho = np.outer(ket, ket.conj())
            for basis, sign in signs.items():
                qber = qber_from_state(rho, basis, target=target)
                assert qber == pytest.approx(0.0, abs=1e-10), (target, basis, sign)

    def test_fidelity_from_qber_requires_all_bases(self):
        with pytest.raises(ValueError):
            fidelity_from_qber({"X": 0.1, "Z": 0.1})

    def test_werner_state_bounds(self):
        with pytest.raises(ValueError):
            werner_state(1.5)


class TestPropertyBased:
    @given(f=st.floats(min_value=0.25, max_value=1.0))
    @settings(max_examples=30, deadline=None)
    def test_werner_fidelity_roundtrip(self, f):
        rho = werner_state(f)
        measured = fidelity_to_pure(rho, bell_state(BellIndex.PSI_PLUS))
        assert measured == pytest.approx(f, abs=1e-9)

    @given(p=st.floats(min_value=0.0, max_value=1.0),
           q=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=30, deadline=None)
    def test_composed_channels_stay_trace_preserving(self, p, q):
        combined = noise.compose_kraus(noise.dephasing_kraus(p),
                                       noise.amplitude_damping_kraus(q))
        assert noise.is_trace_preserving(combined)

    @given(duration=st.floats(min_value=0.0, max_value=1.0),
           t1=st.floats(min_value=1e-4, max_value=10.0),
           t2=st.floats(min_value=1e-4, max_value=10.0))
    @settings(max_examples=30, deadline=None)
    def test_t1_t2_always_physical(self, duration, t1, t2):
        kraus = noise.t1_t2_kraus(duration, t1, t2)
        assert noise.is_trace_preserving(kraus)
        dm = DensityMatrix.from_ket(bell_state(BellIndex.PSI_PLUS))
        dm.apply_kraus(kraus, qubits=[0])
        assert dm.trace() == pytest.approx(1.0, abs=1e-9)
        eigenvalues = np.linalg.eigvalsh(dm.matrix)
        assert eigenvalues.min() > -1e-9
