"""Tests for the cluster transport layer (``repro.cluster.transport``).

Covers the wire codec, the :class:`Transport` contract's lease edge cases —
double-claim races, stale-lease takeover while the original worker
resurrects, resume-cache skip reporting — **parametrized over both
transports** (shared filesystem and TCP), the autoscaling policy/scaler,
and the acceptance bar: a sweep sharded over ``SocketTransport`` with three
workers, work stealing and a mid-grid worker crash, where workers share *no*
filesystem (distinct temp dirs), merging field-for-field identical to a
serial ``SweepRunner`` run under both backends.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time

import pytest

from repro.cluster import (
    ClusterCoordinator,
    ClusterStats,
    ClusterWorker,
    FaultSchedule,
    FaultyTransport,
    FilesystemTransport,
    ProcessPoolScaler,
    QueueDepthPolicy,
    SocketTransport,
    TaskSnapshot,
    TransportError,
)
from repro.cluster.coordinator import done_path
from repro.cluster.serve import ClusterCoordinatorServer
from repro.cluster.transport import parse_address, recv_frame, send_frame
from repro.runtime import ScenarioSpec, SweepRunner, run_sweep, single_kind_scenarios
from repro.runtime.sweep import execute_scenario

DURATION = 0.05

TRANSPORTS = ("filesystem", "socket")


def grid(count=None, backend=None, loads=("Low", "High"),
         max_pairs_options=(1, 3)) -> list[ScenarioSpec]:
    specs = single_kind_scenarios(
        "Lab", kinds=("NL", "CK", "MD"), loads=loads,
        max_pairs_options=max_pairs_options, origins=("A", "B"),
        include_md_k255=False, attempt_batch_size=40, backend=backend)
    return specs if count is None else specs[:count]


def fault_schedule(seed: int) -> FaultSchedule:
    """The drop/duplicate/reset mix the hardening tests re-run under."""
    return FaultSchedule(seed=seed, drop=0.15, duplicate=0.15, reset=0.15)


class TransportCluster:
    """One planned cluster reachable over a configurable transport kind.

    The coordinator state always lives in a local directory (that is what
    makes it durable); ``transport()`` hands out either a direct
    :class:`FilesystemTransport` onto it or a :class:`SocketTransport` to a
    :class:`ClusterCoordinatorServer` fronting it.
    """

    def __init__(self, tmp_path, kind, specs, sink="jsonl",
                 lease_timeout=120.0, cache_dir=None, master_seed=77,
                 num_shards=3):
        self.kind = kind
        self.coordinator = ClusterCoordinator(
            specs, DURATION, tmp_path / "server", master_seed=master_seed,
            num_shards=num_shards, sink=sink, lease_timeout=lease_timeout,
            cache_dir=cache_dir)
        self.coordinator.write_plan()
        self.server = None
        self._transports = []
        if kind == "socket":
            self.server = ClusterCoordinatorServer(self.coordinator)
            self.server.start_background()

    def transport(self, schedule=None):
        """A transport onto the cluster; pass a :class:`FaultSchedule` to
        wrap it in a :class:`FaultyTransport` (seeded drops, duplicates,
        resets, ... injected around every operation)."""
        if self.kind == "socket":
            transport = SocketTransport(self.server.address)
        else:
            transport = FilesystemTransport(self.coordinator.cluster_dir)
        if schedule is not None:
            transport = FaultyTransport(transport, schedule, retry_delay=0.0)
        self._transports.append(transport)
        return transport

    def backdate_stale_leases(self, seconds=3600.0) -> int:
        """Age every lease of an unfinished scenario past any timeout.

        Test-only manipulation of the coordinator's *local* state — workers
        only ever see the effect through their transport.
        """
        past = time.time() - seconds
        aged = 0
        cluster_dir = self.coordinator.cluster_dir
        for lease in (cluster_dir / "tasks").glob("*.lease"):
            if not done_path(cluster_dir, int(lease.stem)).exists():
                os.utime(lease, (past, past))
                aged += 1
        return aged

    def close(self):
        for transport in self._transports:
            transport.close()
        if self.server is not None:
            self.server.stop()


@pytest.fixture(params=TRANSPORTS)
def make_cluster(request, tmp_path):
    clusters = []

    def factory(specs, **kwargs):
        cluster = TransportCluster(tmp_path, request.param, specs, **kwargs)
        clusters.append(cluster)
        return cluster

    factory.kind = request.param
    yield factory
    for cluster in clusters:
        cluster.close()


# --------------------------------------------------------------------------- #
# Wire codec
# --------------------------------------------------------------------------- #
class TestFraming:
    def test_frame_round_trip_over_socketpair(self):
        left, right = socket.socketpair()
        try:
            payload = {"op": "claim", "index": 3,
                       "nested": {"values": [1.5, None, "x"]}}
            send_frame(left, payload)
            assert recv_frame(right) == payload
        finally:
            left.close()
            right.close()

    def test_clean_eof_returns_none_and_torn_frame_raises(self):
        left, right = socket.socketpair()
        left.close()
        try:
            assert recv_frame(right) is None
        finally:
            right.close()
        left, right = socket.socketpair()
        try:
            body = json.dumps({"op": "x"}).encode()
            # Announce more bytes than we send, then close mid-frame.
            left.sendall(len(body).to_bytes(4, "big") + body[:-2])
            left.close()
            with pytest.raises(TransportError, match="mid-frame"):
                recv_frame(right)
        finally:
            right.close()

    def test_parse_address(self):
        assert parse_address("example.org:7766") == ("example.org", 7766)
        assert parse_address(("10.0.0.1", 80)) == ("10.0.0.1", 80)
        with pytest.raises(ValueError):
            parse_address("no-port")

    def test_snapshot_round_trips_through_json(self):
        snapshot = TaskSnapshot(done=frozenset({0, 4}),
                                lease_ages={2: 1.5, 7: 900.0})
        again = TaskSnapshot.from_dict(
            json.loads(json.dumps(snapshot.to_dict())))
        assert again == snapshot
        assert again.is_done(4) and not again.is_done(2)
        assert again.is_available(1, lease_timeout=60.0)
        assert not again.is_available(2, lease_timeout=60.0)  # live lease
        assert again.is_available(7, lease_timeout=60.0)  # stale lease


# --------------------------------------------------------------------------- #
# Transport contract (parametrized over filesystem and socket)
# --------------------------------------------------------------------------- #
class TestTransportContract:
    def test_plan_and_registration_match_the_coordinator(self, make_cluster):
        specs = grid(count=4, backend="analytic")
        cluster = make_cluster(specs)
        transport = cluster.transport()
        assert transport.plan.specs == specs
        assert transport.plan.shard_plan == cluster.coordinator.plan()
        # Auto shard assignment is round-robin over registrations.
        assert transport.register_worker("a", None) == 0
        assert transport.register_worker("b", None) == 1
        assert transport.register_worker("c", 2) == 2
        with pytest.raises(TransportError):
            transport.register_worker("d", 99)

    @pytest.mark.parametrize("faulted", [False, True],
                             ids=["clean", "faulty"])
    def test_double_claim_race_grants_exactly_one(self, make_cluster,
                                                  faulted):
        specs = grid(count=4, backend="analytic")
        cluster = make_cluster(specs)
        # Under faults, contenders' claims are additionally dropped,
        # duplicated and reset mid-race — the injected retries re-deliver
        # claims whose first delivery may have been applied, and exactly-one
        # must still hold because claims idempotently re-grant to the owner.
        contenders = [
            cluster.transport(fault_schedule(300 + i) if faulted else None)
            for i in range(6)]
        grants = []
        barrier = threading.Barrier(len(contenders))

        def contend(transport, worker_id):
            barrier.wait()
            if transport.try_claim(0, worker_id):
                grants.append(worker_id)

        threads = [threading.Thread(target=contend, args=(t, f"w{i}"))
                   for i, t in enumerate(contenders)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(grants) == 1
        # The grant is visible to everyone: index 0 now carries a live lease.
        snapshot = contenders[0].snapshot()
        assert not snapshot.is_available(
            0, cluster.coordinator.lease_timeout)
        # And a later claim against the live lease is refused.
        assert not contenders[0].try_claim(0, "latecomer")

    def test_stale_takeover_while_original_worker_resurrects(
            self, make_cluster):
        specs = grid(count=4, backend="analytic")
        cluster = make_cluster(specs)
        original = cluster.transport()
        rescuer = cluster.transport()
        assert original.try_claim(0, "original")
        assert original.heartbeat(0, "original")

        # The original goes silent; its lease ages past the timeout and a
        # rescuer takes it over atomically.
        assert cluster.backdate_stale_leases() == 1
        assert rescuer.try_claim(0, "rescuer")

        # The resurrected original discovers the takeover through its
        # heartbeat and stops beating.
        assert not original.heartbeat(0, "original")
        assert rescuer.heartbeat(0, "rescuer")

        # Both execute (determinism makes the records identical) and both
        # submissions land; the merge dedupes to the single serial outcome.
        outcome = execute_scenario(specs[0], original.plan.seeds[0], DURATION)
        rescuer.submit_result("rescuer", 0, outcome)
        original.submit_result("original", 0, outcome)
        for transport in (original, rescuer):
            assert transport.snapshot().is_done(0)
        # A claim on a done scenario is refused, stale lease or not.
        cluster.backdate_stale_leases(seconds=7200.0)
        assert not rescuer.try_claim(0, "third")
        cluster.close()
        merged = cluster.coordinator.merge(require_complete=False)
        assert merged.outcomes == [outcome]

    def test_cache_report_skip_reasons_reach_the_worker(self, make_cluster,
                                                        tmp_path):
        specs = grid(count=4, backend="analytic")
        cache_dir = tmp_path / "worker-local-cache"
        serial = run_sweep(specs, DURATION, master_seed=77,
                           cache_dir=cache_dir)
        # Corrupt one entry; leave another readable only under a foreign
        # backend by rewriting its filename suffix (v4 layout:
        # ``<key>.<backend>.<engine>.json``).
        entries = sorted(cache_dir.glob("*.analytic.*.json"))
        assert len(entries) == 4
        entries[0].write_text("{torn")
        entries[1].rename(entries[1].with_name(
            entries[1].name.replace(".analytic.", ".density.")))

        cluster = make_cluster(specs)
        worker = ClusterWorker(cluster.transport(), "w", shard=0,
                               cache_dir=cache_dir)
        worker.run(wait_for_stragglers=False)
        report = worker.cache_report
        assert report.counts() == {"hits": 2, "misses": 0, "skips": 2}
        reasons = sorted(skip.reason for skip in report.skips)
        assert "corrupt cache entry" in reasons[1]
        assert "exists only under 'density'" in reasons[0]
        merged = cluster.coordinator.merge()
        assert merged.outcomes == serial.outcomes

    def test_worker_equivalence_over_either_transport(self, make_cluster):
        specs = grid(count=8, backend="analytic")
        serial = SweepRunner(specs, DURATION, master_seed=77).run()
        cluster = make_cluster(specs)
        workers = [ClusterWorker(cluster.transport(), f"w{i}", shard=i,
                                 cache_dir=None)
                   for i in range(3)]
        for worker in workers:
            worker.run(wait_for_stragglers=False)
        cluster.close()
        merged = cluster.coordinator.merge()
        assert merged.outcomes == serial.outcomes
        assert merged == serial


# --------------------------------------------------------------------------- #
# Socket specifics
# --------------------------------------------------------------------------- #
class TestSocketTransport:
    def test_unknown_op_and_bad_index_are_rejected(self, tmp_path):
        specs = grid(count=2, backend="analytic")
        cluster = TransportCluster(tmp_path, "socket", specs)
        try:
            transport = cluster.transport()
            with pytest.raises(TransportError, match="unknown operation"):
                transport.request("frobnicate")
            with pytest.raises(TransportError, match="out of range"):
                transport.request("claim", index=99, worker_id="w")
        finally:
            cluster.close()

    def test_connect_failure_raises_transport_error(self):
        with pytest.raises(TransportError, match="cannot connect"):
            SocketTransport("127.0.0.1:1", connect_retry=0.0)

    def test_status_over_the_wire(self, tmp_path):
        specs = grid(count=4, backend="analytic")
        cluster = TransportCluster(tmp_path, "socket", specs)
        try:
            transport = cluster.transport()
            status = transport.status()
            assert status["scenarios"] == 4
            assert status["total"]["pending"] == 4
            assert status["complete"] is False
            ClusterWorker(transport, "w", shard=0).run(
                wait_for_stragglers=False)
            assert cluster.transport().status()["complete"] is True
        finally:
            cluster.close()

    def test_request_reconnects_after_a_dropped_connection(self, tmp_path):
        specs = grid(count=2, backend="analytic")
        cluster = TransportCluster(tmp_path, "socket", specs)
        try:
            transport = cluster.transport()
            assert transport.status()["scenarios"] == 2
            # Kill the underlying socket mid-session (what a timed-out or
            # failed request does): the next request must open a fresh,
            # in-sync connection instead of reading a stale response.
            transport._sock.close()
            transport._sock = None
            assert transport.status()["scenarios"] == 2
            # close() is terminal — no silent reconnects afterwards.
            transport.close()
            with pytest.raises(TransportError, match="closed"):
                transport.status()
        finally:
            cluster.close()

    def test_worker_run_survives_coordinator_shutdown(self, tmp_path):
        specs = grid(count=4, backend="analytic")
        cluster = TransportCluster(tmp_path, "socket", specs)
        worker = ClusterWorker(cluster.transport(), "w", shard=0)
        # The coordinator vanishes before the worker ever steps (merged and
        # exited, say): run() must return cleanly, not raise.
        cluster.close()
        assert worker.run(poll_interval=0.01, reconnect_grace=0.0) == 0

    def test_worker_rides_out_a_coordinator_restart(self, tmp_path):
        specs = grid(count=4, backend="analytic")
        cluster = TransportCluster(tmp_path, "socket", specs)
        worker = ClusterWorker(cluster.transport(), "w", shard=0)
        # The coordinator goes down mid-sweep and comes back on the same
        # port (serve resumes on its durable directory); a restart thread
        # brings it up shortly.
        address = cluster.server.server_address[:2]
        cluster.server.stop()
        replacement = {}

        def restart():
            time.sleep(0.5)
            server = ClusterCoordinatorServer(cluster.coordinator, address)
            server.start_background()
            replacement["server"] = server

        thread = threading.Thread(target=restart)
        thread.start()
        try:
            executed = worker.run(poll_interval=0.05, reconnect_grace=30.0)
        finally:
            thread.join()
            replacement["server"].stop()
        assert executed == len(specs)
        merged = cluster.coordinator.merge()
        serial = SweepRunner(specs, DURATION, master_seed=77).run()
        assert merged.outcomes == serial.outcomes

    @pytest.mark.parametrize("faulted", [False, True],
                             ids=["clean", "faulty"])
    def test_server_restart_resumes_durable_state(self, tmp_path, faulted):
        specs = grid(count=6, backend="analytic")
        cluster = TransportCluster(tmp_path, "socket", specs)
        worker = ClusterWorker(
            cluster.transport(fault_schedule(400) if faulted else None),
            "w0", shard=0, steal=False)
        worker.run(wait_for_stragglers=False)
        done_before = len(worker.executed)
        assert 0 < done_before < len(specs)
        cluster.close()

        # A fresh server over the same directory picks up the done markers
        # and result parts; a new worker finishes only the remainder — under
        # faults, its duplicated/reset submits must not double-count any
        # scenario across the restart boundary.
        server = ClusterCoordinatorServer(cluster.coordinator)
        server.start_background()
        try:
            transport = SocketTransport(server.address)
            if faulted:
                transport = FaultyTransport(transport, fault_schedule(401),
                                            retry_delay=0.0)
            finisher = ClusterWorker(transport, "w1", shard=1)
            finisher.run(wait_for_stragglers=False)
            assert len(finisher.executed) == len(specs) - done_before
            merged = cluster.coordinator.merge()
            serial = SweepRunner(specs, DURATION, master_seed=77).run()
            assert merged.outcomes == serial.outcomes
        finally:
            server.stop()


# --------------------------------------------------------------------------- #
# Autoscaling
# --------------------------------------------------------------------------- #
class TestScaling:
    def stats(self, **overrides):
        base = dict(pending=0, leased=0, stale=0, done=0, scenarios=10,
                    workers=0)
        base.update(overrides)
        return ClusterStats(**base)

    def test_queue_depth_policy_spawns_on_backlog(self):
        policy = QueueDepthPolicy(min_workers=1, max_workers=4,
                                  backlog_per_worker=2.0)
        advice = policy.advise(self.stats(pending=10))
        assert advice.spawn == 4 and advice.retire == 0  # capped at max
        advice = policy.advise(self.stats(pending=3, workers=1))
        assert advice.spawn == 1  # ceil(3/2) = 2 desired
        assert policy.advise(self.stats(pending=3, workers=2)).is_noop

    def test_queue_depth_policy_counts_stale_reclaims_as_backlog(self):
        policy = QueueDepthPolicy(max_workers=4)
        advice = policy.advise(self.stats(stale=4, done=6, scenarios=10))
        assert advice.spawn >= 1

    def test_no_spawn_churn_when_everything_is_leased(self):
        # Outstanding == 0 with the grid incomplete: leased scenarios are
        # already staffed, and a freshly spawned worker would find nothing
        # claimable and exit — the policy must not keep spawning into that.
        policy = QueueDepthPolicy(min_workers=1, max_workers=4)
        assert policy.advise(self.stats(leased=2, done=8)).is_noop
        assert policy.desired_workers(self.stats(leased=2, done=8)) == 0

    def test_queue_depth_policy_retires_idle_and_on_completion(self):
        policy = QueueDepthPolicy(min_workers=1, max_workers=4,
                                  backlog_per_worker=2.0)
        # Backlog shrank: only idle workers may be retired.
        advice = policy.advise(self.stats(pending=2, leased=2, done=6,
                                          workers=4))
        assert advice.retire == 2 and advice.spawn == 0
        # Mixed deployment: external workers hold the leases; an exact
        # local idle count must not be masked by the fleet-wide leased
        # number (workers - leased would clamp to 0 here).
        advice = policy.advise(self.stats(pending=2, leased=5, done=3,
                                          workers=2, idle=2))
        assert advice.retire == 1
        # Grid complete: everyone goes home, leased or not.
        advice = policy.advise(self.stats(done=10, workers=3, leased=1))
        assert advice.retire == 3

    def test_never_more_workers_than_remaining_scenarios(self):
        policy = QueueDepthPolicy(min_workers=4, max_workers=8,
                                  backlog_per_worker=1.0)
        advice = policy.advise(self.stats(pending=2, done=8, scenarios=10))
        assert advice.spawn == 2  # remaining scenarios cap the pool

    def test_busy_workers_reported_and_retired_last(self, tmp_path):
        specs = grid(count=4, backend="analytic")
        cluster = TransportCluster(tmp_path, "socket", specs)
        try:
            transport = cluster.transport()
            assert transport.try_claim(0, "scaled-1")
            status = transport.status()
            assert status["busy_workers"] == ["scaled-1"]
            # Stale leases and done scenarios drop out of the busy set.
            cluster.backdate_stale_leases()
            assert transport.status()["busy_workers"] == []
        finally:
            cluster.close()

        class FakeProcess:
            def __init__(self, name):
                self.name = name
                self.terminated = False

            def is_alive(self):
                return not self.terminated

            def terminate(self):
                self.terminated = True

            def join(self, timeout=None):
                pass

        scaler = ProcessPoolScaler("127.0.0.1:1")
        scaler._processes = [FakeProcess("scaled-1"), FakeProcess("scaled-2"),
                             FakeProcess("scaled-3")]
        # scaled-3 is newest but busy: the idle ones go first, newest first.
        assert scaler._retire(2, busy_workers=["scaled-3"]) == 2
        survivors = [p.name for p in scaler._processes]
        assert survivors == ["scaled-3"]
        # Shutdown takes the busy one too (completion / teardown).
        scaler.shutdown()
        assert scaler.live_workers == 0

    def test_autoscaled_socket_sweep_completes(self, tmp_path):
        specs = grid(count=8, backend="analytic")
        serial = SweepRunner(specs, DURATION, master_seed=77).run()
        # Short lease timeout: the scaler may race a status snapshot and
        # terminate a *busy* worker (documented, protocol-safe) — its
        # orphaned lease must go stale quickly or completion stalls for
        # the full timeout.
        cluster = TransportCluster(tmp_path, "socket", specs, num_shards=2,
                                   lease_timeout=3.0)
        scaler = ProcessPoolScaler(
            cluster.server.address,
            policy=QueueDepthPolicy(min_workers=1, max_workers=2,
                                    backlog_per_worker=4.0))
        try:
            deadline = time.monotonic() + 120.0
            while not cluster.server.is_complete():
                assert time.monotonic() < deadline, "autoscaled sweep hung"
                scaler.scale_once(cluster.server.status())
                time.sleep(0.1)
            # Completion advice retires the whole pool.
            advice = scaler.scale_once(cluster.server.status())
            assert advice.retire or scaler.live_workers == 0
        finally:
            scaler.shutdown()
            cluster.close()
        assert scaler.live_workers == 0
        merged = cluster.coordinator.merge()
        assert merged.outcomes == serial.outcomes


# --------------------------------------------------------------------------- #
# Acceptance: socket-sharded crashy sweep == serial, no shared filesystem
# --------------------------------------------------------------------------- #
class TestSocketShardedEquivalence:
    """Acceptance criterion: ≥24 scenarios over ``SocketTransport`` with 3
    workers, stealing, one mid-grid crash, every worker in its own temp dir
    with no shared filesystem — merged result field-for-field identical to
    the serial ``SweepRunner``, under both backends."""

    @pytest.mark.parametrize(
        "backend,sink,faulted",
        [("density", "jsonl", False), ("analytic", "columnar", False),
         ("density", "jsonl", True), ("analytic", "columnar", True)],
        ids=["density-clean", "analytic-clean",
             "density-faulty", "analytic-faulty"])
    def test_socket_sharded_crashy_sweep_equals_serial(self, tmp_path,
                                                       backend, sink,
                                                       faulted):
        specs = grid(backend=backend)
        assert len(specs) >= 24
        serial = SweepRunner(specs, DURATION, master_seed=77).run()

        cluster = TransportCluster(tmp_path, "socket", specs, sink=sink)
        # Each worker's only local state is its own private directory —
        # nothing is shared between workers except the TCP connection.
        worker_dirs = [tmp_path / f"machine-{i}" for i in range(3)]
        for worker_dir in worker_dirs:
            worker_dir.mkdir()

        def faults(seed):
            return fault_schedule(seed) if faulted else None

        workers = [
            ClusterWorker(cluster.transport(faults(500)), "w0", shard=0,
                          cache_dir=worker_dirs[0] / "cache",
                          crash_after_claims=3),
            ClusterWorker(cluster.transport(faults(501)), "w1", shard=1,
                          cache_dir=worker_dirs[1] / "cache"),
            ClusterWorker(cluster.transport(faults(502)), "w2", shard=2,
                          cache_dir=worker_dirs[2] / "cache"),
        ]
        for _ in range(500):
            progressed = False
            for worker in workers:
                try:
                    if worker.step() is not None:
                        progressed = True
                except TransportError:
                    # An injected fault burst outlasting the wrapper's retry
                    # budget — a coordinator outage, as far as the worker is
                    # concerned.  Step again next round.
                    progressed = True
            if cluster.coordinator.is_complete():
                break
            if not progressed:
                assert cluster.backdate_stale_leases() > 0, \
                    "no progress and no stale lease to reclaim: deadlock"
        else:
            raise AssertionError("grid did not complete")

        assert workers[0].crashed  # the simulated death actually happened
        cluster.close()
        merged = cluster.coordinator.merge()
        assert merged.master_seed == serial.master_seed
        assert merged.duration == serial.duration
        assert merged.outcomes == serial.outcomes
        assert merged == serial
        # The survivors stole from the crashed worker's shard.
        shard0 = set(cluster.coordinator.plan().shards[0])
        stolen = shard0 & set(workers[1].executed + workers[2].executed)
        assert stolen
