"""Cross-implementation tests for the pluggable event-queue layer.

Every behaviour here is pinned for **all** `EventQueue` implementations —
the heap reference, the calendar queue and the ladder/tie-bucket hybrid
must be order-equivalent operation for operation (PR 5 tentpole).  The
heap-specific compaction internals stay in ``test_sim_engine.py``.
"""

from __future__ import annotations

import random

import pytest

from repro.sim.engine import SimulationEngine, SimulationError
from repro.sim.queues import (
    CalendarEventQueue,
    available_engines,
    default_engine_name,
    make_event_queue,
    resolve_engine_name,
)

ENGINES = ("heap", "calendar", "ladder")


@pytest.fixture(params=ENGINES)
def any_engine(request):
    return SimulationEngine(queue=request.param)


class TestRegistry:
    def test_available_engines(self):
        assert available_engines() == ["calendar", "heap", "ladder"]

    def test_default_is_heap(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert default_engine_name() == "heap"
        assert SimulationEngine().queue_name == "heap"

    def test_env_selects_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "calendar")
        assert default_engine_name() == "calendar"
        assert SimulationEngine().queue_name == "calendar"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown event engine"):
            resolve_engine_name("btree")
        with pytest.raises(ValueError, match="unknown event engine"):
            SimulationEngine(queue="btree")

    def test_instances_are_fresh(self):
        assert make_event_queue("calendar") is not make_event_queue("calendar")

    def test_instance_passthrough(self):
        queue = make_event_queue("ladder")
        engine = SimulationEngine(queue=queue)
        assert engine._queue is queue
        assert engine.queue_name == "ladder"


class TestCoreBehaviour:
    """The engine-facing contract, identical for every implementation."""

    def test_time_order(self, any_engine):
        fired = []
        for t in (3.0, 1.0, 2.0):
            any_engine.schedule_at(t, lambda t=t: fired.append(t))
        any_engine.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_same_timestamp_fifo(self, any_engine):
        fired = []
        for label in "abcdef":
            any_engine.schedule_at(1.0, lambda l=label: fired.append(l))
        any_engine.run()
        assert fired == list("abcdef")

    def test_same_timestamp_fifo_interleaved_with_pops(self, any_engine):
        engine = any_engine
        fired = []

        def first():
            fired.append("first")
            # Scheduled *at the current time* mid-execution: runs after the
            # other already-queued same-timestamp events.
            engine.schedule_at(1.0, lambda: fired.append("late"))

        engine.schedule_at(1.0, first)
        engine.schedule_at(1.0, lambda: fired.append("second"))
        engine.run()
        assert fired == ["first", "second", "late"]

    def test_cancellation_and_pending_counts(self, any_engine):
        engine = any_engine
        handles = [engine.schedule_at(float(i), lambda: None)
                   for i in range(10)]
        assert engine.pending_events == 10
        for handle in handles[:4]:
            handle.cancel()
            handle.cancel()  # double cancel counts once
        assert engine.pending_events == 6
        engine.run()
        assert engine.pending_events == 0
        assert engine.processed_events == 6

    def test_run_until_semantics(self, any_engine):
        engine = any_engine
        fired = []
        engine.schedule_at(1.0, lambda: fired.append(1))
        engine.schedule_at(2.0, lambda: fired.append(2))
        engine.schedule_at(5.0, lambda: fired.append(5))
        engine.run(until=2.0)  # events at the bound are executed
        assert fired == [1, 2]
        assert engine.now == 2.0
        engine.run(until=10.0)
        assert fired == [1, 2, 5]
        assert engine.now == 10.0  # clock advances past the last event

    def test_run_until_with_empty_queue_advances_clock(self, any_engine):
        assert any_engine.run(until=7.5) == 7.5
        assert any_engine.now == 7.5

    def test_run_until_with_only_cancelled_events_advances_clock(
            self, any_engine):
        engine = any_engine
        engine.schedule_at(1.0, lambda: None).cancel()
        engine.schedule_at(3.0, lambda: None).cancel()
        assert engine.run(until=5.0) == 5.0
        assert engine.now == 5.0
        assert engine.processed_events == 0

    def test_run_until_landing_in_empty_bucket_region(self, any_engine):
        # A long empty stretch between event clusters: the bound lands in
        # the middle of it (for the calendar queue: inside an empty bucket
        # year), and later events stay intact.
        engine = any_engine
        fired = []
        for i in range(20):
            engine.schedule_at(0.001 * i, lambda i=i: fired.append(i))
        engine.schedule_at(1000.0, lambda: fired.append("far"))
        engine.run(until=500.0)
        assert fired == list(range(20))
        assert engine.now == 500.0
        engine.run()
        assert fired[-1] == "far"
        assert engine.now == 1000.0

    def test_max_events_leaves_clock_on_last_event(self, any_engine):
        engine = any_engine
        for i in range(10):
            engine.schedule_at(float(i), lambda: None)
        engine.run(max_events=3)
        assert engine.processed_events == 3
        assert engine.now == 2.0

    def test_schedule_in_past_raises(self, any_engine):
        engine = any_engine
        engine.schedule_at(4.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(1.0, lambda: None)

    def test_callback_args(self, any_engine):
        seen = []
        any_engine.schedule_at(1.0, lambda a, b: seen.append((a, b)),
                               args=("x", 2))
        any_engine.run()
        assert seen == [("x", 2)]


class TestFarFutureOverflow:
    """Far-future timers ride the calendar's overflow ladder (and must
    behave identically on the other implementations)."""

    @pytest.mark.parametrize("engine_name", ENGINES)
    def test_overflow_promotion_fires_in_order(self, engine_name):
        engine = SimulationEngine(queue=engine_name)
        fired = []
        # Dense near-future cluster sets a narrow calendar width...
        for i in range(64):
            engine.schedule_at(1e-5 * i, lambda i=i: fired.append(i))
        # ...so these are far beyond the calendar horizon (overflow ladder).
        engine.schedule_at(50.0, lambda: fired.append("far-a"))
        engine.schedule_at(75.0, lambda: fired.append("far-b"))
        engine.schedule_at(50.0 + 1e-9, lambda: fired.append("far-a2"))
        engine.run()
        assert fired[:64] == list(range(64))
        assert fired[64:] == ["far-a", "far-a2", "far-b"]

    def test_calendar_uses_overflow_for_far_timers(self):
        queue = CalendarEventQueue()
        engine = SimulationEngine(queue=queue)
        for i in range(32):
            engine.schedule_at(1e-5 * i, lambda: None)
        engine.run(until=1e-5 * 40)
        far = engine.schedule_at(1e6, lambda: None)
        assert len(queue._overflow) == 1  # parked on the ladder
        fired = []
        engine.schedule_at(1e6 - 1.0, lambda: fired.append("near"))
        engine.run()
        assert fired == ["near"]
        assert far.popped and not far.cancelled

    @pytest.mark.parametrize("engine_name", ENGINES)
    def test_push_after_overflow_promotion_keeps_order(self, engine_name):
        # Regression: promoting the overflow year (triggered by a peek on
        # an empty calendar, no pop) must not make later pushes at much
        # earlier times sequence after the promoted events.
        engine = SimulationEngine(queue=engine_name)
        fired = []
        engine.schedule_at(1000.0, lambda: fired.append("far"))
        engine.run(until=1.0)  # peeks, promoting the overflow year
        cancelled = engine.schedule_at(2.0, lambda: fired.append("a"))
        cancelled.cancel()  # invalidates any cached head
        engine.schedule_at(3.0, lambda: fired.append("b"))
        engine.run()
        assert fired == ["b", "far"]
        assert engine.now == 1000.0

    @pytest.mark.parametrize("engine_name", ENGINES)
    def test_cancelled_far_future_timer_never_fires(self, engine_name):
        engine = SimulationEngine(queue=engine_name)
        fired = []
        for i in range(32):
            engine.schedule_at(1e-5 * i, lambda: fired.append("near"))
        handle = engine.schedule_at(1e5, lambda: fired.append("far"))
        handle.cancel()
        engine.run()
        assert "far" not in fired
        assert engine.pending_events == 0


class TestCancelCompactInterleavings:
    """Mass-cancellation patterns must stay bounded and order-preserving."""

    @pytest.mark.parametrize("engine_name", ENGINES)
    def test_watchdog_pattern_stays_bounded(self, engine_name):
        engine = SimulationEngine(queue=engine_name)
        fired = 0

        def tick(step=[0]):
            nonlocal fired
            fired += 1
            step[0] += 1
            if step[0] < 2000:
                engine.schedule_at(engine.now + 10.0, lambda: None).cancel()
                engine.schedule_at(engine.now + 0.001, tick)

        engine.schedule_at(0.0, tick)
        engine.run()
        assert fired == 2000
        # Cancelled watchdogs must not accumulate without bound.
        assert len(engine._queue) <= 256

    @pytest.mark.parametrize("engine_name", ENGINES)
    def test_cancel_then_compact_preserves_order(self, engine_name):
        engine = SimulationEngine(queue=engine_name)
        fired = []
        keep = [engine.schedule_at(float(i), lambda i=i: fired.append(i))
                for i in range(100)]
        doomed = [engine.schedule_at(i * 0.5 + 0.25,
                                     lambda: fired.append("doomed"))
                  for i in range(300)]
        # Cancel in an interleaved pattern (front, back, middle).
        for handle in doomed[::2] + doomed[-1::-3]:
            handle.cancel()
        for handle in doomed:
            if not handle.cancelled:
                handle.cancel()
        engine.run()
        assert fired == list(range(100))
        assert all(not h.cancelled for h in keep)

    @pytest.mark.parametrize("engine_name", ENGINES)
    def test_cancel_same_timestamp_subset(self, engine_name):
        engine = SimulationEngine(queue=engine_name)
        fired = []
        handles = [engine.schedule_at(1.0, lambda i=i: fired.append(i))
                   for i in range(20)]
        for handle in handles[3:17:2]:
            handle.cancel()
        engine.run()
        expected = [i for i in range(20) if not (3 <= i < 17 and (i - 3) % 2 == 0)]
        assert fired == expected


class TestRandomizedEquivalence:
    """Fuzz: random schedule/cancel/run interleavings must produce the
    exact same execution trace on every implementation."""

    def _run_script(self, engine_name, script):
        engine = SimulationEngine(queue=engine_name)
        engine.trace = []
        handles = []
        for op in script:
            if op[0] == "run_until":
                engine.run(until=op[1])
            elif op[0] == "schedule":
                handles.append(engine.schedule_at(
                    max(op[1], engine.now), lambda: None, name=f"e{len(handles)}"))
            elif op[0] == "nested":
                # A callback that schedules more events when it fires.
                def nested(offsets=op[1]):
                    for offset in offsets:
                        engine.schedule_after(offset, lambda: None,
                                              name="nested")
                handles.append(engine.schedule_at(
                    max(op[2], engine.now), nested, name="nest"))
            elif op[0] == "cancel":
                if handles:
                    handles[op[1] % len(handles)].cancel()
        engine.run()
        return engine.trace

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5, 6, 7])
    def test_fuzzed_traces_identical(self, seed):
        rnd = random.Random(seed)
        script = []
        t = 0.0
        for _ in range(400):
            roll = rnd.random()
            if roll < 0.55:
                # Mix of cycle-aligned, tied, near and far-future times.
                kind = rnd.random()
                if kind < 0.4:
                    when = t + rnd.randrange(1, 50) * 1e-5
                elif kind < 0.6:
                    when = t + 1e-4  # deliberate ties
                elif kind < 0.9:
                    when = t + rnd.random() * 0.01
                else:
                    when = t + 10 ** rnd.randrange(1, 6)
                script.append(("schedule", when))
            elif roll < 0.7:
                script.append(("cancel", rnd.randrange(0, 1 << 16)))
            elif roll < 0.85:
                offsets = [rnd.random() * 1e-3 for _ in range(rnd.randrange(1, 4))]
                script.append(("nested", offsets, t + rnd.random() * 0.01))
            else:
                t += rnd.random() * 0.05
                script.append(("run_until", t))
        reference = self._run_script("heap", script)
        assert reference  # the fuzz actually executed something
        for engine_name in ("calendar", "ladder"):
            assert self._run_script(engine_name, script) == reference, \
                f"{engine_name} trace diverged from heap (seed {seed})"


class TestPeriodicScheduling:
    def test_periodic_fires_on_cadence(self, any_engine):
        engine = any_engine
        ticks = []
        engine.schedule_periodic(0.5, lambda: ticks.append(engine.now))
        engine.run(until=2.6)
        assert ticks == [0.5, 1.0, 1.5, 2.0, 2.5]

    def test_periodic_custom_start(self, any_engine):
        engine = any_engine
        ticks = []
        engine.schedule_periodic(1.0, lambda: ticks.append(engine.now),
                                 start=0.25)
        engine.run(until=2.5)
        assert ticks == [0.25, 1.25, 2.25]

    def test_periodic_reuses_one_event_object(self):
        engine = SimulationEngine(queue="heap")
        handle = engine.schedule_periodic(1.0, lambda: None)
        event = handle._event
        engine.run(until=10.0)
        assert handle._event is event  # same object across 10 firings
        assert engine.processed_events == 10

    def test_periodic_cancel_stops_series(self, any_engine):
        engine = any_engine
        ticks = []
        handle = engine.schedule_periodic(1.0, lambda: ticks.append(1))
        engine.run(until=2.5)
        handle.cancel()
        assert not handle.active
        engine.run(until=10.0)
        assert ticks == [1, 1]
        assert engine.pending_events == 0

    def test_periodic_cancel_from_inside_callback(self, any_engine):
        engine = any_engine
        ticks = []
        handle = engine.schedule_periodic(
            1.0, lambda: (ticks.append(1),
                          handle.cancel() if len(ticks) >= 3 else None))
        engine.run(until=20.0)
        assert ticks == [1, 1, 1]

    def test_periodic_interval_must_be_positive(self, any_engine):
        with pytest.raises(SimulationError):
            any_engine.schedule_periodic(0.0, lambda: None)

    def test_periodic_interleaves_fifo_with_plain_events(self, any_engine):
        engine = any_engine
        order = []
        engine.schedule_periodic(1.0, lambda: order.append("tick"))
        engine.schedule_at(1.0, lambda: order.append("plain"))
        engine.run(until=1.0)
        # The periodic series was scheduled first, so its occurrence at
        # t=1.0 fires before the plain event at the same timestamp.
        assert order == ["tick", "plain"]


class TestReusableTimer:
    def test_timer_rearms_same_event_object(self, any_engine):
        engine = any_engine
        fired = []
        timer = engine.timer(lambda: fired.append(engine.now))
        timer.arm_at(1.0)
        engine.run()
        first_event = timer._event
        timer.arm_at(2.0)
        assert timer._event is first_event  # recycled, not reallocated
        engine.run()
        assert fired == [1.0, 2.0]

    def test_timer_arm_while_pending_schedules_independent_event(
            self, any_engine):
        engine = any_engine
        fired = []
        timer = engine.timer(lambda: fired.append(engine.now))
        timer.arm_at(2.0)
        timer.arm_at(1.0)  # earlier arm while the first is still pending
        engine.run()
        assert fired == [1.0, 2.0]  # both occurrences fire

    def test_timer_cancel(self, any_engine):
        engine = any_engine
        fired = []
        timer = engine.timer(lambda: fired.append(1))
        timer.arm_after(1.0)
        assert timer.active
        timer.cancel()
        assert not timer.active
        engine.run()
        assert fired == []

    def test_timer_args_per_arm(self, any_engine):
        engine = any_engine
        seen = []
        timer = engine.timer(lambda tag: seen.append(tag))
        timer.arm_at(1.0, args=("a",))
        engine.run()
        timer.arm_at(2.0, args=("b",))
        engine.run()
        assert seen == ["a", "b"]


class TestResetInertness:
    """Satellite: handles from before ``reset()`` must be inert — they can
    never resurrect accounting or re-arm into the fresh queue."""

    def test_cancel_of_stale_handle_does_not_corrupt_accounting(
            self, any_engine):
        engine = any_engine
        stale = engine.schedule_at(1.0, lambda: None)
        engine.reset()
        engine.schedule_at(1.0, lambda: None)
        assert engine.pending_events == 1
        stale.cancel()  # must not decrement the new queue's live count
        assert engine.pending_events == 1
        engine.run()
        assert engine.processed_events == 1

    def test_cancelled_then_reset_then_cancelled_again(self, any_engine):
        engine = any_engine
        handle = engine.schedule_at(1.0, lambda: None)
        handle.cancel()
        engine.reset()
        handle.cancel()
        engine.schedule_at(2.0, lambda: None)
        assert engine.pending_events == 1

    def test_periodic_from_before_reset_never_rearms(self, any_engine):
        engine = any_engine
        ticks = []
        handle = engine.schedule_periodic(1.0, lambda: ticks.append(1))
        engine.run(until=1.5)
        assert ticks == [1]
        engine.reset()
        assert not handle.active
        engine.run(until=20.0)
        assert ticks == [1]
        assert engine.pending_events == 0

    def test_reusable_timer_from_before_reset_allocates_fresh(
            self, any_engine):
        engine = any_engine
        fired = []
        timer = engine.timer(lambda: fired.append(engine.now))
        timer.arm_at(1.0)
        engine.run()
        stale_event = timer._event
        engine.reset()
        timer.arm_at(3.0)  # must not resurrect the pre-reset event object
        assert timer._event is not stale_event
        engine.run()
        assert fired == [1.0, 3.0]

    def test_reset_restarts_clock_and_counters(self, any_engine):
        engine = any_engine
        engine.schedule_at(5.0, lambda: None)
        engine.run()
        engine.reset(start_time=2.0)
        assert engine.now == 2.0
        assert engine.processed_events == 0
        assert engine.pending_events == 0
        with pytest.raises(SimulationError):
            engine.schedule_at(1.0, lambda: None)
