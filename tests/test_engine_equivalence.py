"""Engine-equivalence suite (PR 5 acceptance).

Every event-queue implementation must drive the *same simulation*: for a
given scenario, seed and physics backend, the heap, calendar and ladder
engines must execute the identical event sequence — pinned here event for
event via the engine trace — and sweeps run under different engines must be
field-for-field identical.

Also pins the two elision satellites: reply-watchdog elision is
bit-identical (the watchdog never fires at zero frame loss), and GEN/REPLY
timer elision preserves every delivered outcome while strictly shrinking
the event count.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.messages import Priority
from repro.hardware.parameters import lab_scenario, ql2020_scenario
from repro.runtime.runner import SimulationRun
from repro.runtime.scenarios import ScenarioSpec, single_kind_scenarios
from repro.runtime.sweep import SweepRunner
from repro.runtime.workload import WorkloadSpec

ENGINES = ("heap", "calendar", "ladder")

MIXED_WORKLOAD = [
    WorkloadSpec(priority=Priority.CK, load_fraction=0.99, max_pairs=1,
                 min_fidelity=0.6),
    WorkloadSpec(priority=Priority.MD, load_fraction=0.6, max_pairs=3,
                 min_fidelity=0.55),
]


def traced_run(scenario, workload, duration, *, engine, backend,
               seed=12345, batch=40, **kwargs):
    """Run one simulation recording the executed-event trace."""
    run = SimulationRun(scenario, workload, seed=seed,
                        attempt_batch_size=batch, backend=backend,
                        engine=engine, **kwargs)
    run.network.engine.trace = []
    result = run.run(duration)
    return result, run.network.engine.trace


class TestTraceEquivalence:
    """Event-for-event identical traces across all engines."""

    @pytest.mark.parametrize("backend", ["analytic", "density"])
    def test_smoke_ql2020_mixed_traces_identical(self, backend):
        duration = 0.6 if backend == "analytic" else 0.2
        reference, ref_trace = traced_run(
            ql2020_scenario(), MIXED_WORKLOAD, duration,
            engine="heap", backend=backend)
        assert ref_trace, "reference run executed no events"
        for engine in ("calendar", "ladder"):
            result, trace = traced_run(
                ql2020_scenario(), MIXED_WORKLOAD, duration,
                engine=engine, backend=backend)
            assert trace == ref_trace, \
                f"{engine}/{backend} trace diverged from heap"
            assert result.events_processed == reference.events_processed
            assert result.summary == reference.summary
            assert result.engine == engine

    def test_lab_single_kind_traces_identical(self):
        workload = [WorkloadSpec(priority=Priority.CK, load_fraction=0.99,
                                 max_pairs=3, min_fidelity=0.6)]
        _, ref_trace = traced_run(lab_scenario(), workload, 1.0,
                                  engine="heap", backend="analytic")
        assert ref_trace
        for engine in ("calendar", "ladder"):
            _, trace = traced_run(lab_scenario(), workload, 1.0,
                                  engine=engine, backend="analytic")
            assert trace == ref_trace

    def test_traces_identical_with_reference_scheduling(self):
        """Equivalence holds for the un-elided reference pattern too."""
        _, ref_trace = traced_run(
            ql2020_scenario(), MIXED_WORKLOAD, 0.5, engine="heap",
            backend="analytic", elide_watchdog=False, timer_elision=False)
        assert ref_trace
        for engine in ("calendar", "ladder"):
            _, trace = traced_run(
                ql2020_scenario(), MIXED_WORKLOAD, 0.5, engine=engine,
                backend="analytic", elide_watchdog=False,
                timer_elision=False)
            assert trace == ref_trace

    def test_frame_loss_traces_identical(self):
        """The robustness path (loss > 0, watchdogs active) is equivalent
        across engines as well."""
        scenario = lab_scenario().with_frame_loss(1e-3)
        workload = [WorkloadSpec(priority=Priority.MD, load_fraction=0.99,
                                 max_pairs=3, min_fidelity=0.6)]
        _, ref_trace = traced_run(scenario, workload, 1.0, engine="heap",
                                  backend="analytic", batch=1)
        assert ref_trace
        for engine in ("calendar", "ladder"):
            _, trace = traced_run(scenario, workload, 1.0, engine=engine,
                                  backend="analytic", batch=1)
            assert trace == ref_trace


class TestWatchdogElision:
    """Satellite: at zero frame loss the REPLY provably arrives, so the
    watchdog may be skipped with bit-identical outcomes."""

    @pytest.mark.parametrize("backend", ["analytic", "density"])
    def test_bit_identical_with_and_without_watchdog(self, backend):
        duration = 0.6 if backend == "analytic" else 0.2
        with_wd, trace_with = traced_run(
            ql2020_scenario(), MIXED_WORKLOAD, duration, engine="heap",
            backend=backend, elide_watchdog=False)
        without_wd, trace_without = traced_run(
            ql2020_scenario(), MIXED_WORKLOAD, duration, engine="heap",
            backend=backend, elide_watchdog=True)
        # The watchdog is always cancelled before firing, so the *executed*
        # events are identical: same times and names in the same order
        # (sequence numbers shift because the elided schedules no longer
        # consume them).
        assert [(e[0], e[2]) for e in trace_with] == \
            [(e[0], e[2]) for e in trace_without]
        assert with_wd.events_processed == without_wd.events_processed
        assert with_wd.summary == without_wd.summary
        assert with_wd.requests_issued == without_wd.requests_issued

    def test_watchdog_still_fires_under_frame_loss(self):
        """The elision must auto-disable when frames can be lost."""
        scenario = lab_scenario().with_frame_loss(0.2)
        workload = [WorkloadSpec(priority=Priority.CK, load_fraction=0.99,
                                 max_pairs=1, min_fidelity=0.6)]
        run = SimulationRun(scenario, workload, seed=7, backend="analytic")
        egp = run.network.node_a.egp
        assert egp.elide_watchdog is False
        run.run(2.0)
        recoveries = (run.network.node_a.egp.statistics["lost_reply_recoveries"]
                      + run.network.node_b.egp.statistics["lost_reply_recoveries"])
        assert recoveries > 0  # the watchdog did its job


class TestTimerElision:
    """Satellite/tentpole: GEN/REPLY timer elision preserves outcomes while
    strictly reducing the event count."""

    @pytest.mark.parametrize("backend", ["analytic", "density"])
    def test_outcomes_preserved_and_events_reduced(self, backend):
        duration = 0.6 if backend == "analytic" else 0.2
        reference, _ = traced_run(
            ql2020_scenario(), MIXED_WORKLOAD, duration, engine="heap",
            backend=backend, elide_watchdog=False, timer_elision=False)
        elided, _ = traced_run(
            ql2020_scenario(), MIXED_WORKLOAD, duration, engine="heap",
            backend=backend)
        assert elided.summary == reference.summary
        assert elided.requests_issued == reference.requests_issued
        assert elided.events_processed < reference.events_processed


class TestSweepEquivalence:
    """Field-for-field identical SweepResults across engines."""

    def grid(self, engine):
        specs = single_kind_scenarios(
            "QL2020", kinds=("CK", "MD"), loads=("High",),
            max_pairs_options=(1,), origins=("A",), include_md_k255=False,
            attempt_batch_size=40, backend="analytic", engine=engine)
        return specs

    def test_sweeps_identical_across_engines(self, tmp_path):
        reference = SweepRunner(self.grid("heap"), duration=0.5,
                                master_seed=11).run()
        assert reference.completed
        for engine in ("calendar", "ladder"):
            result = SweepRunner(self.grid(engine), duration=0.5,
                                 master_seed=11).run()
            # ScenarioOutcome equality covers every result field, down to
            # events_processed; the engine field itself is provenance
            # (compare=False), recorded but not part of the identity.
            assert result.outcomes == reference.outcomes
            assert all(outcome.engine == engine
                       for outcome in result.outcomes)
            assert [o.events_processed for o in result.outcomes] == \
                [o.events_processed for o in reference.outcomes]

    def test_engine_recorded_in_outcome_dicts(self):
        result = SweepRunner(self.grid("calendar"), duration=0.3,
                             master_seed=3).run()
        payload = result.to_dict()
        assert all(entry["engine"] == "calendar"
                   for entry in payload["outcomes"])


class TestEnginePlumbing:
    """REPRO_ENGINE / ScenarioSpec.engine threading (mirrors the backend
    plumbing introduced in PR 2)."""

    def base_spec(self, engine=None):
        return self.grid_spec(engine)

    @staticmethod
    def grid_spec(engine=None):
        return single_kind_scenarios(
            "QL2020", kinds=("MD",), loads=("High",), max_pairs_options=(1,),
            origins=("A",), include_md_k255=False, backend="analytic",
            engine=engine)[0]

    def test_spec_round_trip_preserves_engine(self):
        spec = self.grid_spec("calendar")
        rebuilt = ScenarioSpec.from_dict(spec.to_dict())
        assert rebuilt.engine == "calendar"
        assert rebuilt.engine_name() == "calendar"

    def test_identity_key_independent_of_engine(self):
        heap = self.grid_spec("heap")
        calendar = dataclasses.replace(heap, engine="calendar")
        assert heap.identity_key() == calendar.identity_key()

    def test_env_var_resolution(self, monkeypatch):
        spec = self.grid_spec(None)
        monkeypatch.setenv("REPRO_ENGINE", "ladder")
        assert spec.engine_name() == "ladder"
        monkeypatch.delenv("REPRO_ENGINE")
        assert spec.engine_name() == "heap"

    def test_run_result_records_engine(self):
        spec = self.grid_spec("ladder")
        result = spec.run(0.2)
        assert result.engine == "ladder"

    def test_cost_features_include_engine(self):
        assert self.grid_spec("calendar").cost_features()["engine"] == \
            "calendar"

    def test_cache_engine_mismatch_skipped_with_reason(self, tmp_path):
        heap_specs = [self.grid_spec("heap")]
        runner = SweepRunner(heap_specs, duration=0.2, master_seed=5,
                             cache_dir=tmp_path)
        runner.run()
        calendar_specs = [dataclasses.replace(heap_specs[0],
                                              engine="calendar")]
        runner2 = SweepRunner(calendar_specs, duration=0.2, master_seed=5,
                              cache_dir=tmp_path)
        result = runner2.run()
        report = runner2.cache_report()
        assert report.counts()["skips"] == 1
        assert "'heap'" in report.skips[0].reason
        assert "'calendar'" in report.skips[0].reason
        assert result.outcomes[0].ok and not result.outcomes[0].from_cache
        # Both engines now coexist; each resolves to its own entry.
        assert SweepRunner(heap_specs, duration=0.2, master_seed=5,
                           cache_dir=tmp_path).run().outcomes[0].from_cache
        assert SweepRunner(calendar_specs, duration=0.2, master_seed=5,
                           cache_dir=tmp_path).run().outcomes[0].from_cache
