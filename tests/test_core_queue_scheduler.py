"""Tests for the distributed queue protocol, QMM, FEU and scheduling strategies."""

from __future__ import annotations

import math

import pytest

from repro.core.distributed_queue import DistributedQueue, LocalQueue, QueueItem
from repro.core.feu import FidelityEstimationUnit
from repro.core.messages import (
    AbsoluteQueueId,
    EntanglementRequest,
    ErrorCode,
    Priority,
    RequestType,
)
from repro.core.qmm import QuantumMemoryManager
from repro.core.scheduler import (
    FCFSScheduler,
    WeightedFairScheduler,
    make_scheduler,
)
from repro.hardware.nv_device import NVQuantumProcessor
from repro.hardware.parameters import NVGateParameters
from repro.quantum.states import BellIndex
from repro.sim.channel import ClassicalChannel
from repro.sim.engine import SimulationEngine


def make_request(priority=Priority.CK, number=1, **kwargs) -> EntanglementRequest:
    request_type = kwargs.pop("request_type",
                              RequestType.MEASURE if priority is Priority.MD
                              else RequestType.KEEP)
    return EntanglementRequest(remote_node_id="B", request_type=request_type,
                               number=number, priority=priority, origin="A",
                               **kwargs)


def make_item(priority=Priority.CK, seq=0, added_at=0.0, number=1) -> QueueItem:
    request = make_request(priority, number=number)
    item = QueueItem(request=request,
                     queue_id=AbsoluteQueueId(int(priority), seq),
                     schedule_cycle=0, timeout_cycle=None, added_at=added_at,
                     pairs_remaining=number, acknowledged=True)
    return item


def wire_queues(engine, loss=0.0, **kwargs):
    """Build a connected master/slave DQP pair."""
    dqp_a = DistributedQueue(engine, "A", is_master=True, **kwargs)
    dqp_b = DistributedQueue(engine, "B", is_master=False, **kwargs)
    ab = ClassicalChannel(engine, delay=1e-6, loss_probability=loss)
    ba = ClassicalChannel(engine, delay=1e-6, loss_probability=loss)
    ab.connect(dqp_b.receive)
    ba.connect(dqp_a.receive)
    dqp_a.attach_channel(ab)
    dqp_b.attach_channel(ba)
    return dqp_a, dqp_b


class TestLocalQueue:
    def test_add_and_retrieve(self):
        queue = LocalQueue(queue_id=1)
        item = make_item(seq=0)
        queue.add(item)
        assert queue.get(0) is item
        assert len(queue) == 1

    def test_duplicate_sequence_rejected(self):
        queue = LocalQueue(queue_id=1)
        queue.add(make_item(seq=0))
        with pytest.raises(ValueError):
            queue.add(make_item(seq=0))

    def test_capacity_limit(self):
        queue = LocalQueue(queue_id=1, max_size=2)
        queue.add(make_item(seq=0))
        queue.add(make_item(seq=1))
        assert queue.is_full
        with pytest.raises(OverflowError):
            queue.add(make_item(seq=2))

    def test_items_in_arrival_order(self):
        queue = LocalQueue(queue_id=1)
        for seq in (0, 1, 2):
            queue.add(make_item(seq=seq, added_at=float(seq)))
        assert [i.queue_id.queue_seq for i in queue.items_in_order()] == [0, 1, 2]

    def test_ready_items_respect_schedule_cycle(self):
        queue = LocalQueue(queue_id=1)
        item = make_item(seq=0)
        item.schedule_cycle = 10
        queue.add(item)
        assert queue.ready_items(cycle=5) == []
        assert queue.ready_items(cycle=10) == [item]

    def test_remove(self):
        queue = LocalQueue(queue_id=1)
        item = make_item(seq=0)
        queue.add(item)
        assert queue.remove(0) is item
        assert queue.remove(0) is None


class TestDistributedQueue:
    def test_master_add_propagates_to_slave(self, engine):
        dqp_a, dqp_b = wire_queues(engine)
        results = []
        dqp_a.add(make_request(), schedule_cycle=0, timeout_cycle=None,
                  callback=lambda item, err: results.append((item, err)))
        engine.run()
        assert len(results) == 1
        item, error = results[0]
        assert error is None
        assert item.acknowledged
        # The same absolute queue id exists on both sides.
        assert dqp_b.get(item.queue_id) is not None

    def test_slave_add_gets_sequence_from_master(self, engine):
        dqp_a, dqp_b = wire_queues(engine)
        results = []
        request = make_request()
        request.origin = "B"
        dqp_b.add(request, schedule_cycle=0, timeout_cycle=None,
                  callback=lambda item, err: results.append((item, err)))
        engine.run()
        item, error = results[0]
        assert error is None
        assert dqp_a.get(item.queue_id) is not None

    def test_sequence_numbers_are_unique_and_ordered(self, engine):
        dqp_a, _ = wire_queues(engine)
        items = []
        for _ in range(5):
            dqp_a.add(make_request(), 0, None,
                      callback=lambda item, err: items.append(item))
        engine.run()
        seqs = [item.queue_id.queue_seq for item in items]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 5

    def test_priorities_map_to_distinct_queues(self, engine):
        dqp_a, _ = wire_queues(engine)
        collected = []
        for priority in (Priority.NL, Priority.CK, Priority.MD):
            dqp_a.add(make_request(priority), 0, None,
                      callback=lambda item, err: collected.append(item))
        engine.run()
        queue_ids = {item.queue_id.queue_id for item in collected}
        assert queue_ids == {int(Priority.NL), int(Priority.CK), int(Priority.MD)}

    def test_rejection_when_policy_refuses(self, engine):
        dqp_a, dqp_b = wire_queues(engine)
        dqp_b.accept_policy = lambda request: False
        results = []
        dqp_a.add(make_request(), 0, None,
                  callback=lambda item, err: results.append((item, err)))
        engine.run()
        assert results[0][0] is None
        assert results[0][1] is ErrorCode.DENIED

    def test_queue_full_rejected_locally(self, engine):
        dqp_a, _ = wire_queues(engine, max_queue_size=1)
        results = []
        dqp_a.add(make_request(), 0, None,
                  callback=lambda item, err: results.append((item, err)))
        dqp_a.add(make_request(), 0, None,
                  callback=lambda item, err: results.append((item, err)))
        engine.run()
        errors = [err for _, err in results]
        assert ErrorCode.REJECTED in errors

    def test_add_survives_lossy_channel_through_retransmission(self, engine):
        import numpy as np

        dqp_a, dqp_b = wire_queues(engine, loss=0.4, ack_timeout=1e-4)
        results = []
        for _ in range(10):
            dqp_a.add(make_request(), 0, None,
                      callback=lambda item, err: results.append((item, err)))
        engine.run(until=1.0)
        successes = [item for item, err in results if err is None]
        assert len(successes) >= 8
        for item in successes:
            assert dqp_b.get(item.queue_id) is not None

    def test_ready_items_across_priorities(self, engine):
        dqp_a, _ = wire_queues(engine)
        for priority in (Priority.MD, Priority.NL):
            dqp_a.add(make_request(priority), 0, None, callback=lambda i, e: None)
        engine.run()
        ready = dqp_a.ready_items(cycle=100)
        assert len(ready) == 2


class TestQuantumMemoryManager:
    @pytest.fixture
    def qmm(self, rng):
        device = NVQuantumProcessor("A", NVGateParameters(), rng=rng)
        return QuantumMemoryManager(device)

    def test_allocate_keep_reserves_both_qubits(self, qmm):
        allocation = qmm.allocate(RequestType.KEEP)
        assert allocation is not None
        assert allocation.storage is not None
        assert qmm.free_communication_qubits() == 0
        assert qmm.free_storage_qubits() == 0

    def test_allocate_measure_only_needs_communication(self, qmm):
        allocation = qmm.allocate(RequestType.MEASURE)
        assert allocation is not None
        assert allocation.storage is None
        assert qmm.free_storage_qubits() == 1

    def test_release_returns_qubits(self, qmm):
        allocation = qmm.allocate(RequestType.KEEP)
        qmm.release(allocation)
        assert qmm.free_communication_qubits() == 1
        assert qmm.free_storage_qubits() == 1

    def test_release_keep_storage(self, qmm):
        allocation = qmm.allocate(RequestType.KEEP)
        qmm.release(allocation, keep_storage=True)
        assert qmm.free_storage_qubits() == 0
        qmm.release_storage(allocation.storage.qubit_id)
        assert qmm.free_storage_qubits() == 1

    def test_allocation_failure_counted(self, qmm):
        first = qmm.allocate(RequestType.KEEP)
        assert first is not None
        assert qmm.allocate(RequestType.KEEP) is None
        assert qmm.allocation_failures == 1

    def test_can_satisfy_memexceeded_for_large_atomic(self, qmm):
        assert qmm.can_satisfy(RequestType.KEEP, pairs_simultaneously=5) \
            is ErrorCode.MEMEXCEEDED

    def test_can_satisfy_outofmem_when_storage_busy(self, qmm):
        qmm.allocate(RequestType.KEEP)
        assert qmm.can_satisfy(RequestType.KEEP, 1) is ErrorCode.OUTOFMEM

    def test_measure_requests_never_memory_limited(self, qmm):
        assert qmm.can_satisfy(RequestType.MEASURE, 100) is None


class TestFidelityEstimationUnit:
    def test_estimate_returns_feasible_point(self, lab):
        feu = FidelityEstimationUnit(lab)
        estimate = feu.estimate_for_fidelity(0.64, RequestType.KEEP)
        assert estimate is not None
        assert 0 < estimate.alpha < 1
        assert estimate.success_probability > 0
        assert estimate.expected_time_per_pair > 0

    def test_higher_fidelity_means_lower_alpha_and_rate(self, lab):
        feu = FidelityEstimationUnit(lab)
        low = feu.estimate_for_fidelity(0.55, RequestType.MEASURE)
        high = feu.estimate_for_fidelity(0.72, RequestType.MEASURE)
        assert low is not None and high is not None
        assert high.alpha < low.alpha
        assert high.success_probability < low.success_probability

    def test_unattainable_fidelity_returns_none(self, lab):
        feu = FidelityEstimationUnit(lab)
        assert feu.estimate_for_fidelity(0.95, RequestType.KEEP) is None

    def test_keep_unsupported_before_measure(self, ql2020):
        # Storage degradations mean K stops being supported at a lower F_min
        # than M (Figure 6(b): "Higher Fmin not satisfiable for NL").
        feu = FidelityEstimationUnit(ql2020)
        keep_max = max((f for f in [0.5 + 0.02 * i for i in range(20)]
                        if feu.estimate_for_fidelity(f, RequestType.KEEP)),
                       default=None)
        measure_max = max((f for f in [0.5 + 0.02 * i for i in range(20)]
                           if feu.estimate_for_fidelity(f, RequestType.MEASURE)),
                          default=None)
        assert keep_max is not None and measure_max is not None
        assert measure_max >= keep_max

    def test_minimum_completion_time_scales_with_pairs(self, lab):
        feu = FidelityEstimationUnit(lab)
        estimate = feu.estimate_for_fidelity(0.6, RequestType.KEEP)
        assert estimate.minimum_completion_time(3) == pytest.approx(
            3 * estimate.expected_time_per_pair)

    def test_goodness_interpolates(self, lab):
        feu = FidelityEstimationUnit(lab)
        goodness = feu.goodness(0.2, RequestType.KEEP)
        assert 0.5 < goodness < 0.9

    def test_test_rounds_update_measured_fidelity(self, lab):
        feu = FidelityEstimationUnit(lab, test_window=32)
        assert feu.measured_fidelity() is None
        # Perfect anti-correlations in Z, correlations in X/Y -> F = 1.
        for basis, outcomes in (("Z", (0, 1)), ("X", (0, 0)), ("Y", (1, 1))):
            for _ in range(10):
                feu.record_test_round(basis, *outcomes,
                                      target=BellIndex.PSI_PLUS)
        assert feu.measured_fidelity() == pytest.approx(1.0)

    def test_invalid_fidelity_argument(self, lab):
        feu = FidelityEstimationUnit(lab)
        with pytest.raises(ValueError):
            feu.estimate_for_fidelity(1.5, RequestType.KEEP)


class TestSchedulers:
    def test_fcfs_serves_in_arrival_order(self):
        scheduler = FCFSScheduler()
        first = make_item(Priority.MD, seq=0, added_at=1.0)
        second = make_item(Priority.NL, seq=0, added_at=2.0)
        assert scheduler.select([second, first], cycle=0) is first

    def test_fcfs_returns_none_for_empty(self):
        assert FCFSScheduler().select([], cycle=0) is None

    def test_wfq_strict_priority_for_nl(self):
        scheduler = WeightedFairScheduler.higher_wfq()
        nl = make_item(Priority.NL, seq=0, added_at=5.0)
        md = make_item(Priority.MD, seq=0, added_at=1.0)
        for item in (md, nl):
            scheduler.on_enqueue(item, cycle=0)
        assert scheduler.select([md, nl], cycle=0) is nl

    def test_wfq_weights_favour_ck_over_md(self):
        scheduler = WeightedFairScheduler.higher_wfq()
        ck = make_item(Priority.CK, seq=0, added_at=1.0, number=1)
        md = make_item(Priority.MD, seq=1, added_at=1.0, number=1)
        scheduler.on_enqueue(ck, cycle=0)
        scheduler.on_enqueue(md, cycle=0)
        # CK has weight 10 vs MD weight 1: its virtual finish time is earlier.
        assert ck.virtual_finish < md.virtual_finish
        assert scheduler.select([md, ck], cycle=0) is ck

    def test_lower_wfq_weights(self):
        scheduler = WeightedFairScheduler.lower_wfq()
        assert scheduler.weights[Priority.CK] == pytest.approx(2.0)

    def test_wfq_virtual_time_advances_on_delivery(self):
        scheduler = WeightedFairScheduler.higher_wfq()
        md = make_item(Priority.MD, seq=0, added_at=0.0)
        scheduler.on_enqueue(md, cycle=0)
        before = scheduler._virtual_time
        scheduler.on_pair_delivered(md, cycle=1)
        assert scheduler._virtual_time > before

    def test_wfq_identical_instances_stay_deterministic(self):
        # Two independent instances observing the same events must make the
        # same decisions (needed for node A / node B consistency).
        a = WeightedFairScheduler.higher_wfq()
        b = WeightedFairScheduler.higher_wfq()
        items = [make_item(Priority.CK, seq=0, added_at=0.0),
                 make_item(Priority.MD, seq=0, added_at=0.1),
                 make_item(Priority.MD, seq=1, added_at=0.2)]
        for item in items:
            a.on_enqueue(item, 0)
            b.on_enqueue(item, 0)
        for _ in range(3):
            choice_a = a.select(items, 0)
            choice_b = b.select(items, 0)
            assert choice_a is choice_b
            a.on_pair_delivered(choice_a, 0)
            b.on_pair_delivered(choice_b, 0)
            items.remove(choice_a)
            if not items:
                break

    def test_make_scheduler_factory(self):
        assert make_scheduler("FCFS").name == "FCFS"
        assert make_scheduler("HigherWFQ").name == "HigherWFQ"
        assert make_scheduler("LowerWFQ").name == "LowerWFQ"
        assert make_scheduler("WFQ").name == "HigherWFQ"
        with pytest.raises(ValueError):
            make_scheduler("unknown")

    def test_invalid_weights_rejected(self):
        with pytest.raises(ValueError):
            WeightedFairScheduler(weights={Priority.CK: 0.0})


class TestReadyListCache:
    """The per-lane ready-list cache must be invisible except for speed."""

    def make_queue(self) -> LocalQueue:
        return LocalQueue(queue_id=int(Priority.CK))

    def test_cache_hit_returns_same_answer(self):
        queue = self.make_queue()
        queue.add(make_item(seq=0))
        queue.add(make_item(seq=1))
        first = queue.ready_items(5)
        again = queue.ready_items(5)
        assert again is first  # served from cache
        assert [i.queue_id.queue_seq for i in again] == [0, 1]

    def test_add_invalidates(self):
        queue = self.make_queue()
        queue.add(make_item(seq=0))
        assert len(queue.ready_items(0)) == 1
        queue.add(make_item(seq=1))
        assert len(queue.ready_items(0)) == 2

    def test_remove_invalidates(self):
        queue = self.make_queue()
        queue.add(make_item(seq=0))
        queue.add(make_item(seq=1))
        assert len(queue.ready_items(0)) == 2
        queue.remove(0)
        assert [i.queue_id.queue_seq for i in queue.ready_items(0)] == [1]

    def test_schedule_cycle_crossing_expires_cache(self):
        # A waiting item must appear exactly when its schedule cycle passes,
        # with no mutation in between.
        queue = self.make_queue()
        item = make_item(seq=0)
        item.schedule_cycle = 10
        queue.add(item)
        assert queue.ready_items(3) == []
        assert queue.ready_items(9) == []
        assert queue.ready_items(10) == [item]
        assert queue.ready_items(11) == [item]

    def test_suspension_crossing_expires_cache(self):
        queue = self.make_queue()
        item = make_item(seq=0)
        item.suspended_until_cycle = 7
        queue.add(item)
        assert queue.ready_items(2) == []
        assert queue.ready_items(7) == [item]

    def test_acknowledgement_flip_via_dqp_invalidates(self):
        # Master-origin items sit unacknowledged in the master's queue until
        # the slave's ACK arrives; the flip must expire the cached (empty)
        # ready list.
        engine = SimulationEngine()
        dqp_a, dqp_b = wire_queues(engine)
        results = []
        dqp_a.add(make_request(Priority.CK), schedule_cycle=0,
                  timeout_cycle=None,
                  callback=lambda item, error: results.append((item, error)))
        assert dqp_a.ready_items(0) == ()  # ADD still in flight
        engine.run(until=1.0)
        (item, error), = results
        assert error is None
        assert dqp_a.ready_items(0) == (item,)

    def test_cached_list_consistent_with_rebuild(self):
        queue = self.make_queue()
        for seq in range(6):
            item = make_item(seq=seq)
            item.schedule_cycle = seq * 2
            queue.add(item)
        for cycle in range(0, 14):
            cached = list(queue.ready_items(cycle))
            queue.invalidate_ready_cache()
            rebuilt = list(queue.ready_items(cycle))
            assert cached == rebuilt
