"""Vectorized cohort execution: solo equivalence, sweeps, cost model.

The contract under test (``repro.runtime.batch`` + ``repro.backends
.vectorized``): a cohort run of scenarios ``[s_0 .. s_{B-1}]`` produces, for
every member ``i``, a result field-for-field equal to a solo analytic run of
``s_i`` — same summary statistics, same event count, same request count —
while the cohort shares FEU tables and memoized pair physics for throughput.
"""

from __future__ import annotations

import pytest

from repro.backends.vectorized import VectorizedAnalyticBackend
from repro.cluster.planner import RecordedCostModel, StaticCostModel, plan_shards
from repro.core.messages import Priority
from repro.hardware.parameters import lab_scenario
from repro.runtime import ScenarioSpec, SweepRunner, WorkloadSpec
from repro.runtime.batch import CohortRunner, cohortable, execute_cohort
from repro.runtime.scenarios import single_kind_scenarios
from repro.runtime.sweep import ScenarioOutcome

DURATION = 0.2


def analytic_grid(count: int) -> list:
    """First ``count`` scenarios of the analytic long-run grid (both
    hardware setups, so counts beyond one setup's 63 are available)."""
    specs = (single_kind_scenarios("Lab", backend="analytic")
             + single_kind_scenarios("QL2020", backend="analytic"))
    assert len(specs) >= count
    return specs[:count]


def solo_results(specs, seeds, durations):
    return [spec.run(duration, seed=seed)
            for spec, seed, duration in zip(specs, seeds, durations)]


def assert_member_equals_solo(result, reference):
    assert result is not None
    assert result.summary == reference.summary
    assert result.events_processed == reference.events_processed
    assert result.requests_issued == reference.requests_issued


class TestCohortSoloEquivalence:
    @pytest.mark.parametrize("size", [1, 7, 64])
    def test_cohort_members_equal_solo_runs(self, size):
        specs = analytic_grid(size)
        seeds = [9000 + index for index in range(size)]
        runner = CohortRunner(specs, DURATION, seeds=seeds)
        results = runner.run()
        assert runner.errors == [None] * size
        references = solo_results(specs, seeds, [DURATION] * size)
        for result, reference in zip(results, references):
            assert_member_equals_solo(result, reference)

    def test_member_streams_are_independent(self):
        # Two members with the same (spec, seed) produce identical results;
        # a different seed produces a different one — the per-member RNG
        # streams are exactly the solo streams, not shared cohort draws.
        spec = analytic_grid(1)[0]
        runner = CohortRunner([spec, spec, spec], DURATION,
                              seeds=[42, 42, 43])
        twin_a, twin_b, other = runner.run()
        assert runner.errors == [None, None, None]
        assert twin_a.summary == twin_b.summary
        assert twin_a.events_processed == twin_b.events_processed
        assert (other.summary != twin_a.summary
                or other.events_processed != twin_a.events_processed)

    def test_ragged_retirement(self):
        # Members finishing at different simulated durations retire early
        # without disturbing the survivors' results.
        specs = analytic_grid(3)
        seeds = [1, 2, 3]
        durations = [0.07, 0.31, 0.2]
        runner = CohortRunner(specs, durations, seeds=seeds)
        results = runner.run()
        assert runner.errors == [None] * 3
        for result, reference in zip(
                results, solo_results(specs, seeds, durations)):
            assert_member_equals_solo(result, reference)

    def test_shared_backend_reuse_is_exact(self):
        # Consecutive cohorts on one warmed backend (the cluster worker's
        # usage) still reproduce solo results bit-for-bit.
        specs = analytic_grid(2)
        backend = VectorizedAnalyticBackend()
        first = CohortRunner(specs, DURATION, seeds=[5, 6], backend=backend)
        first.run()
        second = CohortRunner(specs, DURATION, seeds=[5, 6], backend=backend)
        for result, reference in zip(
                second.run(), solo_results(specs, [5, 6], [DURATION] * 2)):
            assert_member_equals_solo(result, reference)

    def test_non_analytic_specs_are_rejected(self):
        spec = analytic_grid(1)[0]
        density = ScenarioSpec(name="density", scenario=spec.scenario,
                               workload=spec.workload, backend="density")
        assert not cohortable(density)
        with pytest.raises(ValueError, match="cohorts require 'analytic'"):
            CohortRunner([density], DURATION)


class TestCohortFailureIsolation:
    def test_failing_member_does_not_poison_the_cohort(self):
        good = analytic_grid(2)
        broken = ScenarioSpec(
            name="broken", scenario=lab_scenario(),
            workload=(WorkloadSpec(priority=Priority.MD, load_fraction=0.9),),
            scheduler="NoSuchScheduler", backend="analytic")
        payloads = [(0, good[0], 11, DURATION), (1, broken, 12, DURATION),
                    (2, good[1], 13, DURATION)]
        outcomes = dict(execute_cohort(payloads))
        assert outcomes[1].status == "error"
        assert "NoSuchScheduler" in outcomes[1].error
        references = solo_results(good, [11, 13], [DURATION] * 2)
        for index, reference in zip((0, 2), references):
            outcome = outcomes[index]
            assert outcome.ok
            assert outcome.summary == reference.summary
            assert outcome.events_processed == reference.events_processed
            assert outcome.cohort == 3


class TestCohortSweep:
    def grid(self):
        specs = analytic_grid(6)
        # One non-analytic straggler: it must ride the solo path unchanged.
        density = ScenarioSpec(name="density_straggler",
                               scenario=specs[0].scenario,
                               workload=specs[0].workload, backend="density")
        return specs + [density]

    def test_cohort_sweep_equals_serial_sweep(self):
        specs = self.grid()
        serial = SweepRunner(specs, DURATION, master_seed=77).run()
        cohort = SweepRunner(specs, DURATION, master_seed=77,
                             batch_size=4).run()
        # Field-for-field: ScenarioOutcome equality covers the summary,
        # seed, backend and events_processed (cohort/wall_time are
        # provenance, excluded from comparison).
        assert cohort.outcomes == serial.outcomes
        for outcome in cohort.outcomes[:6]:
            assert outcome.cohort in (4, 2)  # chunks of 4 over 6 scenarios
        assert cohort.outcomes[6].cohort is None
        assert all(outcome.cohort is None for outcome in serial.outcomes)

    def test_cohort_sweep_resumes_from_cache(self, tmp_path):
        specs = analytic_grid(4)
        first = SweepRunner(specs, DURATION, master_seed=3, batch_size=4,
                            cache_dir=tmp_path).run()
        rerun = SweepRunner(specs, DURATION, master_seed=3, batch_size=4,
                            cache_dir=tmp_path)
        second = rerun.run()
        assert all(outcome.from_cache for outcome in second.outcomes)
        assert second.outcomes == first.outcomes
        assert rerun.cache_report().counts()["hits"] == 4

    def test_single_member_chunks_fall_back_to_solo(self):
        specs = analytic_grid(1)
        result = SweepRunner(specs, DURATION, master_seed=3,
                             batch_size=8).run()
        assert result.outcomes[0].ok
        assert result.outcomes[0].cohort is None


class TestCohortCluster:
    def test_cohort_workers_match_serial_sweep(self, tmp_path):
        from repro.cluster import ClusterCoordinator, ClusterWorker

        specs = analytic_grid(12)
        serial = SweepRunner(specs, DURATION, master_seed=77).run()
        coordinator = ClusterCoordinator(
            specs, DURATION, tmp_path / "cluster", master_seed=77,
            num_shards=2, lease_timeout=120.0)
        coordinator.write_plan()
        workers = [
            ClusterWorker(coordinator.cluster_dir, "w0", shard=0,
                          batch_size=4),
            ClusterWorker(coordinator.cluster_dir, "w1", shard=1,
                          batch_size=4),
        ]
        for _ in range(100):
            if all(worker.step() is None for worker in workers):
                break
        for worker in workers:
            worker.close()
        assert coordinator.is_complete()
        merged = coordinator.merge()
        assert merged.outcomes == serial.outcomes
        # The workers really ran cohorts, not twelve solo scenarios.
        assert any(outcome.cohort and outcome.cohort > 1
                   for outcome in merged.outcomes)


class TestCohortCostModel:
    def outcome(self, spec, wall_time, cohort=None):
        return ScenarioOutcome(
            scenario_name=spec.name, scheduler_name=spec.scheduler_name(),
            seed=1, duration=1.0, status="ok", backend=spec.backend_name(),
            wall_time=wall_time, cohort=cohort)

    def test_cohort_observations_use_a_distinct_key(self):
        spec = analytic_grid(1)[0]
        model = RecordedCostModel()
        assert model.observe(self.outcome(spec, wall_time=0.8))
        assert model.observe(self.outcome(spec, wall_time=0.1, cohort=8))
        assert model.recorded_rate(spec) == pytest.approx(0.8)
        assert model.recorded_rate(spec, cohort=True) == pytest.approx(0.1)
        # Mixed history stays unmixed: solo estimates ignore cohort data.
        assert model.estimate(spec, 2.0) == pytest.approx(1.6)
        assert model.cohort_estimate(spec, 2.0, 8) == pytest.approx(0.2)

    def test_cohort_rates_round_trip_through_json(self, tmp_path):
        spec = analytic_grid(1)[0]
        model = RecordedCostModel()
        model.observe(self.outcome(spec, wall_time=0.6))
        model.observe(self.outcome(spec, wall_time=0.15, cohort=16))
        path = model.save(tmp_path / "cost_model.json")
        loaded = RecordedCostModel.load(path)
        assert loaded.recorded_rate(spec) == pytest.approx(0.6)
        assert loaded.recorded_rate(spec, cohort=True) == pytest.approx(0.15)
        assert loaded.to_dict() == model.to_dict()

    def test_static_model_discounts_analytic_cohorts_only(self):
        spec = analytic_grid(1)[0]
        density = ScenarioSpec(name="density", scenario=spec.scenario,
                               workload=spec.workload, backend="density")
        model = StaticCostModel()
        solo = model.estimate(spec, 1.0)
        assert model.cohort_estimate(spec, 1.0, 4) == pytest.approx(solo / 4)
        capped = model.cohort_estimate(spec, 1.0, 64)
        assert capped == pytest.approx(
            solo / StaticCostModel.ANALYTIC_COHORT_SPEEDUP)
        assert model.cohort_estimate(density, 1.0, 64) == pytest.approx(
            model.estimate(density, 1.0))

    def test_plan_shards_accounts_for_cohort_throughput(self):
        specs = analytic_grid(8)
        plan_solo = plan_shards(specs, 2, DURATION)
        plan_cohort = plan_shards(specs, 2, DURATION, cohort_size=4)
        assert sorted(i for shard in plan_cohort.shards for i in shard) == \
            list(range(8))
        for index in range(8):
            assert plan_cohort.scenario_costs[index] == pytest.approx(
                plan_solo.scenario_costs[index] / 4)
