"""Shared pytest fixtures for the reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.parameters import lab_scenario, ql2020_scenario
from repro.sim.engine import SimulationEngine


@pytest.fixture
def engine() -> SimulationEngine:
    """A fresh simulation engine."""
    return SimulationEngine()


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator."""
    return np.random.default_rng(42)


@pytest.fixture(scope="session")
def lab():
    """The Lab hardware scenario (cached for the whole test session)."""
    return lab_scenario()


@pytest.fixture(scope="session")
def ql2020():
    """The QL2020 hardware scenario (cached for the whole test session)."""
    return ql2020_scenario()
