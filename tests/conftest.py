"""Shared pytest fixtures for the reproduction test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.hardware.parameters import lab_scenario, ql2020_scenario
from repro.sim.engine import SimulationEngine


@pytest.fixture(autouse=True)
def _isolate_repro_selectors():
    """Fail any test that leaks a ``REPRO_BACKEND`` / ``REPRO_ENGINE``
    change to its neighbours.

    The whole suite is run once per backend (and once per event engine) in
    CI, so a test that mutates a selector without restoring it silently
    changes the physics — or the event queue — of every later test.
    ``monkeypatch.setenv`` is fine (it restores before this fixture's
    teardown runs); bare ``os.environ`` writes are the bug this guards
    against.  The original value is restored either way so one offender
    cannot cascade.
    """
    before = {var: os.environ.get(var)
              for var in ("REPRO_BACKEND", "REPRO_ENGINE")}
    yield
    leaks = []
    for var, value in before.items():
        after = os.environ.get(var)
        if after != value:
            if value is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = value
            leaks.append(f"{var}: {value!r} -> {after!r}")
    if leaks:
        # Every variable is restored *before* failing, so one offender
        # cannot cascade into later tests.
        pytest.fail(f"test leaked {'; '.join(leaks)} "
                    f"(use monkeypatch.setenv, which restores itself)")


@pytest.fixture
def engine() -> SimulationEngine:
    """A fresh simulation engine."""
    return SimulationEngine()


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator."""
    return np.random.default_rng(42)


@pytest.fixture(scope="session")
def lab():
    """The Lab hardware scenario (cached for the whole test session)."""
    return lab_scenario()


@pytest.fixture(scope="session")
def ql2020():
    """The QL2020 hardware scenario (cached for the whole test session)."""
    return ql2020_scenario()
