"""Shared pytest fixtures for the reproduction test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.hardware.parameters import lab_scenario, ql2020_scenario
from repro.sim.engine import SimulationEngine


@pytest.fixture(autouse=True)
def _isolate_repro_backend():
    """Fail any test that leaks a ``REPRO_BACKEND`` change to its neighbours.

    The whole suite is run once per backend in CI, so a test that mutates
    the selector without restoring it silently changes the physics of every
    later test.  ``monkeypatch.setenv`` is fine (it restores before this
    fixture's teardown runs); bare ``os.environ`` writes are the bug this
    guards against.  The original value is restored either way so one
    offender cannot cascade.
    """
    before = os.environ.get("REPRO_BACKEND")
    yield
    after = os.environ.get("REPRO_BACKEND")
    if after != before:
        if before is None:
            os.environ.pop("REPRO_BACKEND", None)
        else:
            os.environ["REPRO_BACKEND"] = before
        pytest.fail(f"test leaked REPRO_BACKEND: {before!r} -> {after!r} "
                    f"(use monkeypatch.setenv, which restores itself)")


@pytest.fixture
def engine() -> SimulationEngine:
    """A fresh simulation engine."""
    return SimulationEngine()


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator."""
    return np.random.default_rng(42)


@pytest.fixture(scope="session")
def lab():
    """The Lab hardware scenario (cached for the whole test session)."""
    return lab_scenario()


@pytest.fixture(scope="session")
def ql2020():
    """The QL2020 hardware scenario (cached for the whole test session)."""
    return ql2020_scenario()
