"""Tests for run supervision (``repro.runtime.guard``).

Covers the engine's deterministic event budget and wall-clock deadline,
``GuardPolicy`` round-trips, result validation, the quarantine store, the
scenario fault plan, the ``SweepRunner`` retry/quarantine loop (including
cohort degradation and resume), every failure status through all three
result sinks, and the cluster-side retry budget: ``record_failure``
charging, repeated-lease-death quarantine, the serve ``fail`` op, and the
frame-rejection regression (oversized / garbage frames must get structured
errors without taking the connection down).
"""

from __future__ import annotations

import dataclasses
import json
import socket
import struct
import time

import numpy as np
import pytest

from repro.cluster import ClusterCoordinator, FilesystemTransport
from repro.cluster.serve import ClusterCoordinatorServer
from repro.cluster.sinks import load_results, merge_results, open_sink, part_name
from repro.cluster.transport import (
    MAX_FRAME_BYTES,
    FrameDecodeError,
    FrameTooLarge,
    SocketTransport,
    recv_frame,
    send_frame,
)
from repro.runtime import (
    GuardPolicy,
    ScenarioSpec,
    SweepRunner,
    run_sweep,
    single_kind_scenarios,
)
from repro.runtime.guard import (
    FAILURE_STATUSES,
    QUARANTINED,
    SCENARIO_FAULTS_ENV,
    DeadlineExceeded,
    EventBudgetExceeded,
    QuarantineRecord,
    QuarantineStore,
    ScenarioFaultPlan,
    quarantined_outcome,
    validate_density_state,
    validate_outcome,
    validate_summary_data,
)
from repro.runtime.sweep import _failure_outcome
from repro.sim.engine import SimulationEngine

DURATION = 0.05


def grid(count=None, loads=("Low", "High")) -> list[ScenarioSpec]:
    specs = single_kind_scenarios(
        "Lab", kinds=("NL", "CK", "MD"), loads=loads,
        max_pairs_options=(1,), origins=("A",), include_md_k255=False,
        attempt_batch_size=40, backend="analytic")
    return specs if count is None else specs[:count]


# --------------------------------------------------------------------------- #
# Engine guard hooks
# --------------------------------------------------------------------------- #
class TestEngineGuards:
    def test_event_budget_interrupts_at_the_exact_event(self):
        def run_with_budget(budget):
            engine = SimulationEngine()
            engine.schedule_periodic(1.0, lambda: None, name="tick")
            engine.event_budget = budget
            with pytest.raises(EventBudgetExceeded) as err:
                engine.run()
            return err.value

        first = run_with_budget(50)
        second = run_with_budget(50)
        assert first.events_processed == second.events_processed == 50
        assert first.sim_time == second.sim_time

    def test_wall_deadline_interrupts(self):
        engine = SimulationEngine()
        engine.schedule_periodic(1.0, lambda: None, name="tick")
        engine.deadline_at = time.perf_counter() - 1.0  # already past
        with pytest.raises(DeadlineExceeded) as err:
            engine.run(until=5000.0)
        # The deadline is only polled every 1024 events, so the interrupt
        # lands on a multiple of the polling stride.
        assert err.value.events_processed % 1024 == 0

    def test_unset_guards_leave_run_unbounded(self):
        engine = SimulationEngine()
        engine.schedule_periodic(1.0, lambda: None, name="tick")
        engine.run(until=2000.0)  # > one deadline polling stride


# --------------------------------------------------------------------------- #
# GuardPolicy
# --------------------------------------------------------------------------- #
class TestGuardPolicy:
    def test_round_trips_through_dict(self):
        policy = GuardPolicy(max_events=123, wall_deadline=4.5,
                             max_attempts=3, validate=True)
        assert GuardPolicy.from_dict(policy.to_dict()) == policy

    @pytest.mark.parametrize("kwargs", [
        {"max_events": 0},
        {"max_events": -5},
        {"wall_deadline": 0.0},
        {"max_attempts": 0},
    ])
    def test_rejects_invalid_knobs(self, kwargs):
        with pytest.raises(ValueError):
            GuardPolicy(**kwargs)

    def test_install_arms_the_engine(self):
        engine = SimulationEngine()
        GuardPolicy(max_events=7, wall_deadline=60.0).install(engine)
        assert engine.event_budget == 7
        assert engine.deadline_at is not None
        assert GuardPolicy(max_events=1).bounds_execution
        assert not GuardPolicy(validate=True).bounds_execution


# --------------------------------------------------------------------------- #
# Result validation
# --------------------------------------------------------------------------- #
class TestValidation:
    def test_density_state_checks(self):
        good = np.array([[0.5, 0.0], [0.0, 0.5]], dtype=complex)
        assert validate_density_state(good) is None
        assert "not PSD" in validate_density_state(
            np.array([[2.0, 0], [0, -1.0]], dtype=complex))
        bad_trace = np.array([[0.9, 0], [0, 0.9]], dtype=complex)
        assert "trace" in validate_density_state(bad_trace)
        non_hermitian = np.array([[0.5, 0.4], [0.1, 0.5]], dtype=complex)
        assert "Hermitian" in validate_density_state(non_hermitian)
        nans = np.array([[np.nan, 0], [0, 1.0]], dtype=complex)
        assert "finite" in validate_density_state(nans)

    def test_summary_data_key_conventions(self):
        assert validate_summary_data({"fidelity": 0.93}, "s") == []
        assert any("fidelity" in p for p in
                   validate_summary_data({"fidelity": 1.5}, "s"))
        assert any("finite" in p.lower() for p in
                   validate_summary_data({"latency_avg": float("nan")}, "s"))
        # Containers under a keyed name are flattened into its numbers.
        nested = {"success_probability": [0.5, -0.2]}
        assert any("outside" in p for p in
                   validate_summary_data(nested, "s"))

    def test_validate_outcome_flags_corruption(self):
        (outcome,) = run_sweep(grid(1), DURATION, master_seed=7).outcomes
        assert outcome.ok
        assert validate_outcome(outcome) == []
        corrupted = dataclasses.replace(outcome, events_processed=-3)
        assert validate_outcome(corrupted)

    def test_validating_sweep_accepts_healthy_results(self, tmp_path):
        guard = GuardPolicy(validate=True, max_attempts=1)
        baseline = run_sweep(grid(2), DURATION, master_seed=7)
        checked = SweepRunner(grid(2), DURATION, master_seed=7,
                              guard=guard).run()
        assert checked.outcomes == baseline.outcomes


# --------------------------------------------------------------------------- #
# Quarantine records
# --------------------------------------------------------------------------- #
class TestQuarantine:
    def test_store_round_trips_durably(self, tmp_path):
        record = QuarantineRecord(index=3, scenario_name="s", seed=42,
                                  attempts=2, status="timeout",
                                  error="boom", source="sweep")
        QuarantineStore(tmp_path).record(record)
        # A fresh store instance sees the durable record.
        store = QuarantineStore(tmp_path)
        assert store.indices() == {3}
        loaded = store.load(3)
        assert loaded == record
        assert QuarantineRecord.from_dict(record.to_dict()) == record

    def test_quarantined_outcome_keeps_identity_fields(self):
        spec = grid(1)[0]
        last = _failure_outcome(spec, 9, DURATION, "oom", "MemoryError",
                                time.perf_counter())
        final = quarantined_outcome(last, attempts=2)
        assert final.status == QUARANTINED
        assert final.scenario_name == last.scenario_name
        assert final.seed == last.seed
        assert "2 attempt(s)" in final.error and "[oom]" in final.error


# --------------------------------------------------------------------------- #
# Scenario fault plan
# --------------------------------------------------------------------------- #
class TestScenarioFaultPlan:
    def test_env_round_trip(self):
        plan = ScenarioFaultPlan(hang=frozenset({"a"}),
                                 oom=frozenset({"b", "c"}),
                                 crash=frozenset({"d"}))
        assert ScenarioFaultPlan.from_env(plan.to_env()) == plan
        assert plan.fault_for("a") == "hang"
        assert plan.fault_for("c") == "oom"
        assert plan.fault_for("d") == "crash"
        assert plan.fault_for("e") is None


# --------------------------------------------------------------------------- #
# Guarded sweeps: identity, retries, quarantine, degradation, resume
# --------------------------------------------------------------------------- #
class TestGuardedSweep:
    def test_loose_guard_changes_nothing(self):
        specs = grid(3)
        baseline = run_sweep(specs, DURATION, master_seed=21)
        guard = GuardPolicy(max_events=10**9, wall_deadline=600.0,
                            max_attempts=2, validate=True)
        guarded = SweepRunner(specs, DURATION, master_seed=21,
                              guard=guard).run()
        assert guarded.outcomes == baseline.outcomes
        assert guarded.quarantined == []

    def test_exhausted_budget_quarantines_with_durable_records(
            self, tmp_path):
        # Indices 1 and 2 of the small grid actually process engine events
        # (the others resolve on the analytic fast path without any); at
        # 0.5 simulated seconds both process well over 100, so a 10-event
        # budget deterministically interrupts them.
        specs = grid()[1:3]
        guard = GuardPolicy(max_events=10, max_attempts=2)
        result = SweepRunner(specs, 0.5, master_seed=21, guard=guard,
                             cache_dir=tmp_path).run()
        assert [o.status for o in result.outcomes] == [QUARANTINED] * 2
        assert result.quarantined_indices == [0, 1]
        records = QuarantineStore(tmp_path).load_all()
        assert [r.index for r in records] == [0, 1]
        assert all(r.status == "timeout" and r.attempts == 2
                   and r.source == "sweep" for r in records)

    def test_fault_plan_quarantines_exactly_the_poisoned(
            self, tmp_path, monkeypatch):
        specs = grid()
        baseline = run_sweep(specs, DURATION, master_seed=21)
        plan = ScenarioFaultPlan(hang=frozenset({specs[1].name}),
                                 oom=frozenset({specs[3].name}))
        monkeypatch.setenv(SCENARIO_FAULTS_ENV, plan.to_env())
        guard = GuardPolicy(max_events=200_000, wall_deadline=60.0,
                            max_attempts=2)
        result = SweepRunner(specs, DURATION, master_seed=21, guard=guard,
                             cache_dir=tmp_path).run()
        assert result.quarantined_indices == [1, 3]
        survivors = [o for i, o in enumerate(result.outcomes)
                     if i not in (1, 3)]
        expected = [o for i, o in enumerate(baseline.outcomes)
                    if i not in (1, 3)]
        assert survivors == expected
        statuses = {r.index: r.status
                    for r in QuarantineStore(tmp_path).load_all()}
        assert statuses == {1: "timeout", 3: "oom"}

        # Resume from the same cache without the faults: the quarantine is
        # durable — nothing re-executes and nothing un-quarantines.
        monkeypatch.delenv(SCENARIO_FAULTS_ENV)
        resumed = SweepRunner(specs, DURATION, master_seed=21, guard=guard,
                              cache_dir=tmp_path).run()
        assert resumed.outcomes == result.outcomes
        assert all(o.from_cache for o in resumed.outcomes)

    def test_cohort_degrades_failing_members_to_solo(
            self, tmp_path, monkeypatch):
        specs = grid()
        baseline = run_sweep(specs, DURATION, master_seed=21)
        plan = ScenarioFaultPlan(oom=frozenset({specs[2].name}))
        monkeypatch.setenv(SCENARIO_FAULTS_ENV, plan.to_env())
        guard = GuardPolicy(max_events=200_000, max_attempts=2)
        result = SweepRunner(specs, DURATION, master_seed=21, guard=guard,
                             batch_size=4, cache_dir=tmp_path).run()
        assert result.quarantined_indices == [2]
        survivors = [o for i, o in enumerate(result.outcomes) if i != 2]
        assert survivors == [o for i, o in enumerate(baseline.outcomes)
                             if i != 2]


# --------------------------------------------------------------------------- #
# Failure statuses through every sink (and the merge)
# --------------------------------------------------------------------------- #
class TestFailureStatusSinks:
    @pytest.fixture(scope="class")
    def failure_outcomes(self):
        specs = grid()
        outcomes = [
            _failure_outcome(spec, seed=100 + index, duration=DURATION,
                             status=status,
                             error=f"injected {status} failure\nline two",
                             started=time.perf_counter(),
                             events_processed=index * 11)
            for index, (spec, status) in enumerate(
                zip(specs, FAILURE_STATUSES))
        ]
        outcomes.append(quarantined_outcome(outcomes[0], attempts=2))
        return outcomes

    @pytest.mark.parametrize("kind", ["json", "jsonl", "columnar"])
    def test_every_failure_status_survives_the_sink(self, failure_outcomes,
                                                    tmp_path, kind):
        path = tmp_path / part_name(kind, "w0")
        sink = open_sink(kind, path, master_seed=1, duration=DURATION)
        for index, outcome in enumerate(failure_outcomes):
            sink.write(index, outcome)
        sink.close()
        loaded = [o for _, o in load_results(path)]
        assert loaded == failure_outcomes
        assert ([o.status for o in loaded]
                == list(FAILURE_STATUSES) + [QUARANTINED])
        assert all(o.error for o in loaded)

    def test_failure_statuses_merge_identically_across_formats(
            self, failure_outcomes, tmp_path):
        merged = {}
        for kind in ("json", "jsonl", "columnar"):
            path = tmp_path / kind / part_name(kind, "w0")
            path.parent.mkdir()
            sink = open_sink(kind, path, master_seed=1, duration=DURATION)
            for index, outcome in enumerate(failure_outcomes):
                sink.write(index, outcome)
            sink.close()
            merged[kind] = merge_results([path])
        assert merged["json"] == merged["jsonl"] == merged["columnar"]
        result = merged["json"]
        assert result.quarantined_indices == [len(failure_outcomes) - 1]
        assert len(result.failed) == len(failure_outcomes)

    def test_mixed_ok_and_failed_parts_merge(self, failure_outcomes,
                                             tmp_path):
        ok = run_sweep(grid(1), DURATION, master_seed=1).outcomes[0]
        a = tmp_path / part_name("jsonl", "w0")
        sink = open_sink("jsonl", a, master_seed=1, duration=DURATION)
        sink.write(0, ok)
        sink.close()
        b = tmp_path / part_name("columnar", "w1")
        sink = open_sink("columnar", b, master_seed=1, duration=DURATION)
        sink.write(1, failure_outcomes[0])
        sink.close()
        merged = merge_results([a, b], expected_count=2)
        assert merged.outcomes == [ok, failure_outcomes[0]]


# --------------------------------------------------------------------------- #
# Cluster-side retry budget and quarantine
# --------------------------------------------------------------------------- #
class TestClusterGuard:
    def coordinator(self, tmp_path, **kwargs):
        kwargs.setdefault("guard", GuardPolicy(max_events=10**9,
                                               max_attempts=2))
        coordinator = ClusterCoordinator(grid(3), DURATION, tmp_path / "c",
                                         master_seed=5, num_shards=1,
                                         **kwargs)
        coordinator.write_plan()
        return coordinator

    def failure(self, coordinator, index, status="error"):
        plan = coordinator.cluster_plan()
        return _failure_outcome(plan.specs[index], plan.seeds[index],
                                DURATION, status, "injected failure",
                                time.perf_counter())

    def test_record_failure_charges_then_quarantines(self, tmp_path):
        coordinator = self.coordinator(tmp_path)
        transport = FilesystemTransport(coordinator.cluster_dir)
        assert transport.try_claim(0, "w1")
        charged = transport.record_failure(
            "w1", 0, self.failure(coordinator, 0), attempt=1)
        assert charged == {"attempts": 1, "quarantined": False}
        # The failing worker's lease was released: the scenario is
        # immediately reclaimable for the retry.
        assert transport.try_claim(0, "w2")
        charged = transport.record_failure(
            "w2", 0, self.failure(coordinator, 0), attempt=1)
        assert charged["attempts"] == 2 and charged["quarantined"]
        (record,) = coordinator.quarantine_records()
        assert (record.index, record.status, record.source) == \
            (0, "error", "coordinator")
        # Duplicate delivery of the same failure is idempotent.
        again = transport.record_failure(
            "w2", 0, self.failure(coordinator, 0), attempt=1)
        assert again["quarantined"]
        assert len(coordinator.quarantine_records()) == 1
        transport.close()

    def test_repeated_lease_deaths_quarantine_silent_crashers(
            self, tmp_path, monkeypatch):
        import os as _os

        coordinator = self.coordinator(tmp_path)
        transport = FilesystemTransport(coordinator.cluster_dir)

        def age_lease(index):
            past = time.time() - 3600.0
            lease = coordinator.cluster_dir / "tasks" / f"{index}.lease"
            _os.utime(lease, (past, past))

        # Death 1: w1 claims and "dies" (never heartbeats, never reports).
        assert transport.try_claim(1, "w1")
        age_lease(1)
        # w2's takeover writes the death marker and wins the lease.
        assert transport.try_claim(1, "w2")
        age_lease(1)
        # Death 2 spends the budget: the takeover is refused and the
        # scenario is quarantined as a crash without any failure report.
        assert not transport.try_claim(1, "w3")
        (record,) = coordinator.quarantine_records()
        assert (record.index, record.status, record.attempts,
                record.source) == (1, "crash", 2, "coordinator")
        transport.close()

    def test_unguarded_plan_document_is_unchanged(self, tmp_path):
        coordinator = self.coordinator(tmp_path, guard=None)
        assert "guard" not in coordinator.cluster_plan().to_dict()
        # Unguarded protocol: failures are not tracked, deaths not counted.
        transport = FilesystemTransport(coordinator.cluster_dir)
        assert transport.guard is None
        transport.close()


# --------------------------------------------------------------------------- #
# Serve: the fail op and frame rejection (S6 regression)
# --------------------------------------------------------------------------- #
class TestServeGuard:
    @pytest.fixture
    def server(self, tmp_path):
        coordinator = ClusterCoordinator(
            grid(2), DURATION, tmp_path / "serve", master_seed=5,
            num_shards=1,
            guard=GuardPolicy(max_events=10**9, max_attempts=2))
        server = ClusterCoordinatorServer(coordinator)
        server.start_background()
        yield server
        server.stop()

    def test_fail_op_charges_over_the_wire(self, server):
        transport = SocketTransport(server.address)
        plan = transport.plan
        assert transport.try_claim(0, "w1")
        outcome = _failure_outcome(plan.specs[0], plan.seeds[0], DURATION,
                                   "timeout", "injected",
                                   time.perf_counter())
        charged = transport.record_failure("w1", 0, outcome, attempt=1)
        assert charged["attempts"] == 1 and not charged["quarantined"]
        assert transport.try_claim(0, "w1")
        charged = transport.record_failure("w1", 0, outcome, attempt=2)
        assert charged["quarantined"]
        (record,) = server.coordinator.quarantine_records()
        assert record.status == "timeout"
        transport.close()

    def test_rejects_bad_frames_and_keeps_serving(self, server):
        sock = socket.create_connection(server.server_address[:2],
                                        timeout=30)
        try:
            # Oversized announcement: structured error, body drained.
            sock.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
            sock.sendall(b"x" * 1024)
            response = recv_frame(sock)
            assert response["ok"] is False
            assert "rejected frame" in response["error"]
            sock.sendall(b"x" * (MAX_FRAME_BYTES + 1 - 1024))
            # Undecodable body: structured error, stream still framed.
            garbage = b"\xff\xfe{not json"
            sock.sendall(struct.pack(">I", len(garbage)) + garbage)
            response = recv_frame(sock)
            assert response["ok"] is False
            # Non-object frame: structured error.
            body = json.dumps([1, 2]).encode()
            sock.sendall(struct.pack(">I", len(body)) + body)
            response = recv_frame(sock)
            assert response["ok"] is False
            # The same connection still serves real operations.
            send_frame(sock, {"op": "plan"})
            response = recv_frame(sock)
            assert response["ok"] is True and "plan" in response
        finally:
            sock.close()

    def test_recv_frame_raises_typed_errors(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
            with pytest.raises(FrameTooLarge) as err:
                recv_frame(b)
            assert err.value.length == MAX_FRAME_BYTES + 1
            a.sendall(struct.pack(">I", 3) + b"\xff\xfe\xfd")
            with pytest.raises(FrameDecodeError):
                recv_frame(b)
        finally:
            a.close()
            b.close()
