"""Cross-backend equivalence: the analytic fast path against the exact model.

Two independent implementations answering the same questions is the
strongest correctness check the physics layer has:

* the closed-form attempt model must reproduce the exact density-matrix
  heralding distribution (probabilities *and* conditional states) to
  numerical precision,
* the analytic device-noise operations must act identically on pair states,
* a full simulation run under ``analytic-exact`` (same event granularity and
  random-number consumption as ``density``) must produce identical metrics,
* the fast-forward ``analytic`` backend must stay statistically equivalent
  on the paper's Table-1 slice, and
* backend selection must round-trip through the sweep cache.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import (
    AnalyticBackend,
    DensityMatrixBackend,
    available_backends,
    get_backend,
    resolve_backend_name,
)
from repro.backends.base import BatchGrant
from repro.core.messages import RequestType
from repro.hardware.pair import EntangledPair
from repro.hardware.parameters import lab_scenario, ql2020_scenario
from repro.quantum.density import DensityMatrix
from repro.quantum.states import BellIndex, bell_state
from repro.runtime.scenarios import single_kind_scenarios, table1_scenarios
from repro.runtime.sweep import SweepRunner

DENSITY = DensityMatrixBackend()
ANALYTIC = AnalyticBackend()

SCENARIOS = {"Lab": lab_scenario(), "QL2020": ql2020_scenario()}
ALPHAS = (0.05, 0.18, 0.35, 0.5)


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_available_backends(self):
        assert {"density", "analytic", "analytic-exact"} <= \
            set(available_backends())

    def test_named_backends_are_shared(self):
        assert get_backend("density") is get_backend("density")
        assert get_backend("analytic") is get_backend("analytic")

    def test_instances_pass_through(self):
        backend = AnalyticBackend(fast_forward=False)
        assert get_backend(backend) is backend

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "analytic")
        assert resolve_backend_name(None) == "analytic"
        monkeypatch.delenv("REPRO_BACKEND")
        assert resolve_backend_name(None) == "density"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend_name("tensor-network")


# --------------------------------------------------------------------------- #
# Attempt-model equivalence (closed form vs exact density matrices)
# --------------------------------------------------------------------------- #
class TestAttemptModelEquivalence:
    @pytest.mark.parametrize("hardware", sorted(SCENARIOS))
    @pytest.mark.parametrize("alpha", ALPHAS)
    def test_success_probability_matches(self, hardware, alpha):
        scenario = SCENARIOS[hardware]
        exact = DENSITY.attempt_model(scenario, alpha)
        fast = ANALYTIC.attempt_model(scenario, alpha)
        assert fast.success_probability == \
            pytest.approx(exact.success_probability, rel=1e-9)

    @pytest.mark.parametrize("hardware", sorted(SCENARIOS))
    @pytest.mark.parametrize("alpha", ALPHAS)
    def test_heralded_fidelity_matches(self, hardware, alpha):
        scenario = SCENARIOS[hardware]
        exact = DENSITY.attempt_model(scenario, alpha)
        fast = ANALYTIC.attempt_model(scenario, alpha)
        assert fast.average_success_fidelity() == \
            pytest.approx(exact.average_success_fidelity(), abs=1e-9)
        for target in (BellIndex.PSI_PLUS, BellIndex.PSI_MINUS):
            assert fast.average_success_fidelity(target) == \
                pytest.approx(exact.average_success_fidelity(target),
                              abs=1e-9)

    @pytest.mark.parametrize("hardware", sorted(SCENARIOS))
    @pytest.mark.parametrize("request_type",
                             [RequestType.KEEP, RequestType.MEASURE])
    def test_delivered_fidelity_matches(self, hardware, request_type):
        scenario = SCENARIOS[hardware]
        for alpha in ALPHAS:
            exact = DENSITY.attempt_model(scenario, alpha)
            fast = ANALYTIC.attempt_model(scenario, alpha)
            assert fast.delivered_fidelity(request_type) == \
                pytest.approx(exact.delivered_fidelity(request_type),
                              abs=1e-9)

    @pytest.mark.parametrize("hardware", sorted(SCENARIOS))
    def test_conditional_states_match(self, hardware):
        scenario = SCENARIOS[hardware]
        rng_a = np.random.default_rng(5)
        rng_b = np.random.default_rng(5)
        exact = DENSITY.attempt_model(scenario, 0.3)
        fast = ANALYTIC.attempt_model(scenario, 0.3)
        # Drive both models until each success outcome was observed.
        seen = set()
        for _ in range(20000):
            sample_exact = exact.sample(rng_a)
            sample_fast = fast.sample(rng_b)
            assert sample_exact.outcome_code == sample_fast.outcome_code
            if sample_exact.success:
                seen.add(sample_exact.outcome_code)
                np.testing.assert_allclose(sample_fast.state.matrix,
                                           sample_exact.state.matrix,
                                           atol=1e-10)
            if seen == {1, 2}:
                break
        assert seen == {1, 2}, "did not observe both Bell outcomes"

    def test_resolve_consumes_identical_randomness(self):
        scenario = SCENARIOS["Lab"]
        rng_a = np.random.default_rng(99)
        rng_b = np.random.default_rng(99)
        exact = DENSITY.attempt_model(scenario, 0.4)
        fast = ANALYTIC.attempt_model(scenario, 0.4)
        for _ in range(200):
            attempts_exact, sample_exact = exact.resolve(rng_a, 500)
            attempts_fast, sample_fast = fast.resolve(rng_b, 500)
            assert attempts_exact == attempts_fast
            assert sample_exact.outcome_code == sample_fast.outcome_code


# --------------------------------------------------------------------------- #
# Device-operation equivalence
# --------------------------------------------------------------------------- #
def _random_pair(seed: int) -> tuple[EntangledPair, EntangledPair]:
    """Two identical pairs in a random (valid) two-qubit mixed state."""
    rng = np.random.default_rng(seed)
    raw = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
    rho = raw @ raw.conj().T
    rho = rho / np.trace(rho)
    pairs = []
    for _ in range(2):
        pairs.append(EntangledPair(
            state=DensityMatrix(rho.copy(), validate=False),
            heralded_bell=BellIndex.PSI_PLUS, created_at=0.0))
    return pairs[0], pairs[1]


class TestDeviceOperationEquivalence:
    @pytest.mark.parametrize("side", ["A", "B"])
    def test_t1t2_matches(self, side):
        from repro.hardware.parameters import CoherenceTimes

        coherence = CoherenceTimes(t1=2.86e-3, t2=1.0e-3)
        pair_exact, pair_fast = _random_pair(1)
        DENSITY.apply_t1t2(pair_exact, side, coherence, 3e-4)
        ANALYTIC.apply_t1t2(pair_fast, side, coherence, 3e-4)
        np.testing.assert_allclose(pair_fast.state.matrix,
                                   pair_exact.state.matrix, atol=1e-12)

    @pytest.mark.parametrize("side", ["A", "B"])
    def test_depolarizing_and_dephasing_match(self, side):
        pair_exact, pair_fast = _random_pair(2)
        DENSITY.apply_depolarizing(pair_exact, side, 0.97)
        ANALYTIC.apply_depolarizing(pair_fast, side, 0.97)
        DENSITY.apply_dephasing(pair_exact, side, 0.12)
        ANALYTIC.apply_dephasing(pair_fast, side, 0.12)
        np.testing.assert_allclose(pair_fast.state.matrix,
                                   pair_exact.state.matrix, atol=1e-12)

    @pytest.mark.parametrize("side", ["A", "B"])
    def test_correction_matches(self, side):
        pair_exact, pair_fast = _random_pair(3)
        DENSITY.apply_correction(pair_exact, side, 0.995)
        ANALYTIC.apply_correction(pair_fast, side, 0.995)
        np.testing.assert_allclose(pair_fast.state.matrix,
                                   pair_exact.state.matrix, atol=1e-12)

    @pytest.mark.parametrize("basis", ["X", "Y", "Z"])
    @pytest.mark.parametrize("side", ["A", "B"])
    def test_measurement_matches(self, basis, side):
        pair_exact, pair_fast = _random_pair(4)
        rng_a = np.random.default_rng(7)
        rng_b = np.random.default_rng(7)
        outcome_exact = DENSITY.measure_pair(pair_exact, side, basis,
                                             0.95, 0.995, rng_a)
        outcome_fast = ANALYTIC.measure_pair(pair_fast, side, basis,
                                             0.95, 0.995, rng_b)
        assert outcome_exact == outcome_fast
        np.testing.assert_allclose(pair_fast.state.matrix,
                                   pair_exact.state.matrix, atol=1e-12)

    def test_correction_flips_psi_minus_to_psi_plus(self):
        state = DensityMatrix.from_ket(bell_state(BellIndex.PSI_MINUS))
        pair = EntangledPair(state=state, heralded_bell=BellIndex.PSI_MINUS,
                             created_at=0.0)
        ANALYTIC.apply_correction(pair, "A", 1.0)
        assert pair.state.fidelity_to_pure(
            bell_state(BellIndex.PSI_PLUS)) == pytest.approx(1.0)


# --------------------------------------------------------------------------- #
# Batching policy
# --------------------------------------------------------------------------- #
class TestBatchPolicy:
    def test_density_never_exceeds_configured_batch(self):
        timing = SCENARIOS["QL2020"].timing
        grant = DENSITY.granted_batch(RequestType.MEASURE, 100, True, timing)
        assert grant == BatchGrant(100, 1)
        # K on QL2020: round trip exceeds the cycle -> no batching.
        grant = DENSITY.granted_batch(RequestType.KEEP, 100, True, timing)
        assert grant == BatchGrant(1, 1)

    def test_analytic_fast_forwards_measure(self):
        timing = SCENARIOS["QL2020"].timing
        grant = ANALYTIC.granted_batch(RequestType.MEASURE, 1, True, timing)
        assert grant.stride == 1
        assert grant.batch * timing.mhp_cycle == pytest.approx(
            ANALYTIC.max_window_seconds, rel=0.01)

    def test_analytic_keep_stride_matches_attempt_spacing(self):
        timing = SCENARIOS["QL2020"].timing
        grant = ANALYTIC.granted_batch(RequestType.KEEP, 1, True, timing)
        expected_stride = int(np.ceil(timing.attempt_spacing_k /
                                      timing.mhp_cycle - 1e-9))
        assert grant.stride == expected_stride
        assert grant.batch > 1
        window = grant.cycles * timing.mhp_cycle
        assert window <= ANALYTIC.max_window_seconds + \
            grant.stride * timing.mhp_cycle

    def test_analytic_exact_matches_density_policy(self):
        exact = AnalyticBackend(fast_forward=False)
        timing = SCENARIOS["QL2020"].timing
        for request_type in (RequestType.KEEP, RequestType.MEASURE):
            for configured in (1, 50):
                assert exact.granted_batch(request_type, configured, True,
                                           timing) == \
                    DENSITY.granted_batch(request_type, configured, True,
                                          timing)

    def test_non_multiplexed_measure_is_never_batched(self):
        timing = SCENARIOS["QL2020"].timing
        grant = ANALYTIC.granted_batch(RequestType.MEASURE, 100, False,
                                       timing)
        assert grant.batch == 1

    def test_configured_batch_clipped_to_window(self):
        for hardware in SCENARIOS:
            timing = SCENARIOS[hardware].timing
            for request_type in (RequestType.KEEP, RequestType.MEASURE):
                grant = ANALYTIC.granted_batch(request_type, 100000, True,
                                               timing)
                window = grant.cycles * timing.mhp_cycle
                assert window <= ANALYTIC.max_window_seconds + \
                    grant.stride * timing.mhp_cycle

    def test_frame_loss_disables_fast_forward(self):
        timing = SCENARIOS["Lab"].timing
        grant = ANALYTIC.granted_batch(RequestType.MEASURE, 1, True, timing,
                                       frame_loss_probability=1e-4)
        assert grant == BatchGrant(1, 1)
        # Explicitly configured batching still follows the conservative
        # exact-model policy under loss.
        grant = ANALYTIC.granted_batch(RequestType.MEASURE, 50, True, timing,
                                       frame_loss_probability=1e-4)
        assert grant == BatchGrant(50, 1)


# --------------------------------------------------------------------------- #
# Full-run equivalence
# --------------------------------------------------------------------------- #
class TestRunEquivalence:
    @pytest.mark.parametrize("batch", [1, 50])
    def test_analytic_exact_run_is_identical(self, batch):
        spec = single_kind_scenarios(
            "Lab", kinds=("MD",), loads=("High",), max_pairs_options=(3,),
            origins=("A",), include_md_k255=False)[0]
        exact = spec.run(1.5, seed=17, attempt_batch_size=batch,
                         backend="density")
        fast = spec.run(1.5, seed=17, attempt_batch_size=batch,
                        backend="analytic-exact")
        assert fast.summary.to_dict() == exact.summary.to_dict()
        assert exact.backend == "density"
        assert fast.backend == "analytic-exact"

    def test_fast_forward_statistical_equivalence_md(self):
        """MD throughput/fidelity agree between backends on a Lab slice.

        Measure-directly runs deliver many pairs, so a handful of seeds
        already gives tight statistics.
        """
        spec = single_kind_scenarios(
            "Lab", kinds=("MD",), loads=("High",), max_pairs_options=(3,),
            origins=("A",), include_md_k255=False)[0]
        throughput = {"density": [], "analytic": []}
        fidelity = {"density": [], "analytic": []}
        for backend in ("density", "analytic"):
            for seed in (21, 22, 23):
                summary = spec.run(4.0, seed=seed, attempt_batch_size=100,
                                   backend=backend).summary
                throughput[backend].append(sum(summary.throughput.values()))
                if summary.average_fidelity:
                    fidelity[backend].append(
                        np.mean(list(summary.average_fidelity.values())))
        mean_density = np.mean(throughput["density"])
        mean_analytic = np.mean(throughput["analytic"])
        assert mean_analytic == pytest.approx(mean_density, rel=0.30)
        assert np.mean(fidelity["analytic"]) == \
            pytest.approx(np.mean(fidelity["density"]), abs=0.03)

    def test_robustness_scenarios_are_not_fast_forwarded(self):
        """Frame-loss runs expose every frame individually on all backends.

        With fast-forward disabled by the loss probability, the analytic
        backend consumes the random stream exactly like the exact one, so a
        robustness run is field-for-field identical.
        """
        from repro.runtime.scenarios import robustness_scenarios

        spec = robustness_scenarios("Lab", loss_probabilities=(1e-4,))[0]
        exact = spec.run(1.0, seed=5, backend="density")
        fast = spec.run(1.0, seed=5, backend="analytic")
        assert fast.summary.to_dict() == exact.summary.to_dict()

    def test_fast_forward_statistical_equivalence_table1(self):
        """Table-1 slice: MD throughput and scaled latency agree."""
        spec = [s for s in table1_scenarios("QL2020")
                if s.name == "table1_noNLmoreMD_FCFS"][0]
        metrics = {}
        for backend in ("density", "analytic"):
            throughput, latency = [], []
            for seed in (101, 103, 104, 105):
                summary = spec.run(8.0, seed=seed, attempt_batch_size=100,
                                   backend=backend).summary
                throughput.append(summary.throughput.get("MD", 0.0))
                if "MD" in summary.average_scaled_latency:
                    latency.append(summary.average_scaled_latency["MD"])
            metrics[backend] = (np.mean(throughput), np.mean(latency))
        assert metrics["analytic"][0] == \
            pytest.approx(metrics["density"][0], rel=0.35)
        assert metrics["analytic"][1] == \
            pytest.approx(metrics["density"][1], rel=0.5)


# --------------------------------------------------------------------------- #
# Sweep integration: cache key, resume, serialisation
# --------------------------------------------------------------------------- #
class TestSweepIntegration:
    def _specs(self, backend):
        return single_kind_scenarios(
            "Lab", kinds=("MD",), loads=("High",), max_pairs_options=(1,),
            origins=("A",), include_md_k255=False, attempt_batch_size=50,
            backend=backend)

    def test_backend_recorded_and_cached(self, tmp_path):
        runner = SweepRunner(self._specs("analytic"), duration=0.4,
                             master_seed=7, cache_dir=tmp_path)
        result = runner.run()
        outcome = result.outcomes[0]
        assert outcome.ok and outcome.backend == "analytic"
        assert not outcome.from_cache

        # Same sweep again: resumed entirely from cache.
        rerun = SweepRunner(self._specs("analytic"), duration=0.4,
                            master_seed=7, cache_dir=tmp_path).run()
        assert rerun.outcomes[0].from_cache
        assert rerun.outcomes[0].backend == "analytic"
        assert rerun.outcomes[0].summary == result.outcomes[0].summary

        # A different backend must miss the cache.
        other = SweepRunner(self._specs("density"), duration=0.4,
                            master_seed=7, cache_dir=tmp_path).run()
        assert not other.outcomes[0].from_cache
        assert other.outcomes[0].backend == "density"

    def test_backend_distinguishes_cache_entries(self):
        # Since PR 3 the backend lives in the cache *filename* rather than
        # the key hash (so a foreign-backend entry is found and reported
        # instead of silently missed), but entries from different backends
        # must still never satisfy each other's lookups.
        from repro.runtime.cache import ResumeCache

        spec_density = self._specs("density")[0]
        spec_analytic = self._specs("analytic")[0]
        cache = ResumeCache("unused-dir")
        assert SweepRunner.cache_key(spec_density, 1, 1.0) == \
            SweepRunner.cache_key(spec_analytic, 1, 1.0)
        assert cache.path(spec_density, 1, 1.0) != \
            cache.path(spec_analytic, 1, 1.0)

    def test_json_round_trip_preserves_backend(self, tmp_path):
        runner = SweepRunner(self._specs("analytic"), duration=0.3,
                             master_seed=3)
        result = runner.run()
        from repro.runtime.sweep import SweepResult

        restored = SweepResult.from_json(result.to_json())
        assert restored.outcomes[0].backend == "analytic"
        assert restored.outcomes == result.outcomes
