"""Property-style invariants of the schedulers and the distributed queue.

These tests sweep parameter grids (weights, backlog sizes, loss rates)
rather than single examples, pinning the invariants the sweep engine's
determinism ultimately rests on:

* WFQ never starves a low-weight class under a flood of high-weight work;
* service order within one priority class is FIFO for every scheduler;
* both nodes' ``DistributedQueue`` replicas agree on absolute queue ids,
  even over a lossy control channel.
"""

from __future__ import annotations

import itertools

import pytest

from repro.core.distributed_queue import DistributedQueue, QueueItem
from repro.core.messages import (
    AbsoluteQueueId,
    EntanglementRequest,
    Priority,
    RequestType,
)
from repro.core.scheduler import (
    FCFSScheduler,
    WeightedFairScheduler,
    make_scheduler,
)
from repro.sim.channel import ClassicalChannel
from repro.sim.engine import SimulationEngine


def make_request(priority: Priority, number: int = 1,
                 origin: str = "A") -> EntanglementRequest:
    request_type = (RequestType.MEASURE if priority is Priority.MD
                    else RequestType.KEEP)
    return EntanglementRequest(remote_node_id="B", request_type=request_type,
                               number=number, priority=priority,
                               origin=origin)


def make_item(priority: Priority, seq: int, added_at: float,
              number: int = 1) -> QueueItem:
    return QueueItem(request=make_request(priority, number=number),
                     queue_id=AbsoluteQueueId(int(priority), seq),
                     schedule_cycle=0, timeout_cycle=None, added_at=added_at,
                     pairs_remaining=number, acknowledged=True)


def wire_queues(engine: SimulationEngine, loss: float = 0.0, **kwargs):
    dqp_a = DistributedQueue(engine, "A", is_master=True, **kwargs)
    dqp_b = DistributedQueue(engine, "B", is_master=False, **kwargs)
    ab = ClassicalChannel(engine, delay=1e-6, loss_probability=loss)
    ba = ClassicalChannel(engine, delay=1e-6, loss_probability=loss)
    ab.connect(dqp_b.receive)
    ba.connect(dqp_a.receive)
    dqp_a.attach_channel(ab)
    dqp_b.attach_channel(ba)
    return dqp_a, dqp_b


class TestWFQNoStarvation:
    """A lone MD request must be served despite an endless CK flood."""

    @pytest.mark.parametrize("ck_weight", [2.0, 10.0, 50.0])
    @pytest.mark.parametrize("md_pairs", [1, 3])
    def test_md_served_within_weight_bound(self, ck_weight, md_pairs):
        scheduler = WeightedFairScheduler(
            weights={Priority.CK: ck_weight, Priority.MD: 1.0}, name="test")
        md = make_item(Priority.MD, seq=0, added_at=0.0, number=md_pairs)
        scheduler.on_enqueue(md, cycle=0)
        backlog = [md]
        served_md_at = None
        # CK service advances virtual time by 1/w per delivery, so MD's
        # virtual finish (md_pairs / 1) is overtaken after at most about
        # w * md_pairs CK deliveries.  Allow generous slack.
        bound = int(3 * ck_weight * md_pairs) + 10
        for cycle in range(bound):
            ck = make_item(Priority.CK, seq=cycle + 1, added_at=float(cycle))
            scheduler.on_enqueue(ck, cycle)
            backlog.append(ck)
            choice = scheduler.select(backlog, cycle)
            assert choice is not None
            scheduler.on_pair_delivered(choice, cycle)
            backlog.remove(choice)
            if choice is md:
                served_md_at = cycle
                break
        assert served_md_at is not None, (
            f"MD starved for {bound} cycles at CK weight {ck_weight}")

    @pytest.mark.parametrize("weights", [
        {Priority.CK: 10.0, Priority.MD: 1.0},
        {Priority.CK: 2.0, Priority.MD: 1.0},
    ])
    def test_every_backlogged_request_eventually_completes(self, weights):
        scheduler = WeightedFairScheduler(weights=weights, name="test")
        backlog = []
        for seq, priority in enumerate([Priority.CK] * 6 + [Priority.MD] * 3):
            item = make_item(priority, seq=seq, added_at=float(seq))
            scheduler.on_enqueue(item, cycle=0)
            backlog.append(item)
        served = []
        for cycle in itertools.count():
            choice = scheduler.select(backlog, cycle)
            if choice is None:
                break
            scheduler.on_pair_delivered(choice, cycle)
            backlog.remove(choice)
            served.append(choice)
        assert not backlog  # closed backlog fully drained: nothing starves
        assert {item.priority for item in served} == {Priority.CK, Priority.MD}


class TestFIFOWithinPriority:
    @pytest.mark.parametrize("scheduler_name",
                             ["FCFS", "HigherWFQ", "LowerWFQ"])
    @pytest.mark.parametrize("priority", [Priority.CK, Priority.MD])
    @pytest.mark.parametrize("count", [3, 7])
    def test_service_order_matches_arrival_order(self, scheduler_name,
                                                 priority, count):
        scheduler = make_scheduler(scheduler_name)
        items = [make_item(priority, seq=seq, added_at=float(seq))
                 for seq in range(count)]
        for item in items:
            scheduler.on_enqueue(item, cycle=0)
        # Present the backlog in scrambled order: the scheduler must still
        # serve by arrival time.
        backlog = items[1::2] + items[0::2]
        served = []
        for cycle in range(count):
            choice = scheduler.select(backlog, cycle)
            scheduler.on_pair_delivered(choice, cycle)
            backlog.remove(choice)
            served.append(choice)
        assert served == items

    @pytest.mark.parametrize("scheduler_name", ["FCFS", "HigherWFQ"])
    def test_queue_id_breaks_added_at_ties(self, scheduler_name):
        scheduler = make_scheduler(scheduler_name)
        items = [make_item(Priority.CK, seq=seq, added_at=1.0)
                 for seq in range(4)]
        for item in items:
            scheduler.on_enqueue(item, cycle=0)
        first = scheduler.select(list(reversed(items)), cycle=0)
        assert first is items[0]


class TestDistributedQueueAgreement:
    @pytest.mark.parametrize("origins", [
        ("A",) * 4, ("B",) * 4, ("A", "B", "A", "B"),
    ])
    @pytest.mark.parametrize("priorities", [
        (Priority.CK,) * 4, (Priority.NL, Priority.CK, Priority.MD,
                             Priority.CK),
    ])
    def test_both_replicas_hold_identical_queue_ids(self, engine, origins,
                                                    priorities):
        dqp_a, dqp_b = wire_queues(engine)
        acknowledged: list[QueueItem] = []
        for origin, priority in zip(origins, priorities):
            dqp = dqp_a if origin == "A" else dqp_b
            dqp.add(make_request(priority, origin=origin), schedule_cycle=0,
                    timeout_cycle=None,
                    callback=lambda item, err: acknowledged.append(item))
        engine.run()
        assert len(acknowledged) == len(origins)
        assert all(item is not None for item in acknowledged)

        def snapshot(dqp: DistributedQueue):
            return {
                queue_id: [(item.queue_id.queue_seq,
                            item.request.priority,
                            item.request.origin)
                           for item in queue.items_in_order()]
                for queue_id, queue in dqp.queues.items()
            }

        # Field-for-field agreement: same lanes, same sequence numbers, same
        # order, same owning requests.
        assert snapshot(dqp_a) == snapshot(dqp_b)
        # Absolute ids are unique across the whole distributed queue.
        all_ids = [item.queue_id for queue in dqp_a.queues.values()
                   for item in queue.items_in_order()]
        assert len(set(all_ids)) == len(all_ids)

    @pytest.mark.parametrize("loss", [0.2, 0.4])
    def test_acknowledged_items_agree_over_lossy_channel(self, engine, loss):
        dqp_a, dqp_b = wire_queues(engine, loss=loss, ack_timeout=1e-4,
                                   max_retries=50)
        results = []
        for index in range(8):
            origin = "A" if index % 2 == 0 else "B"
            dqp = dqp_a if origin == "A" else dqp_b
            dqp.add(make_request(Priority.CK, origin=origin), 0, None,
                    callback=lambda item, err: results.append((item, err)))
        engine.run(until=2.0)
        successes = [item for item, err in results if err is None]
        assert successes, "no add survived the lossy channel"
        for item in successes:
            # Every acknowledged id exists on *both* replicas and names the
            # same request.
            mine = dqp_a.get(item.queue_id) or dqp_b.get(item.queue_id)
            peer_a = dqp_a.get(item.queue_id)
            peer_b = dqp_b.get(item.queue_id)
            assert peer_a is not None and peer_b is not None
            assert peer_a.request is peer_b.request is mine.request
