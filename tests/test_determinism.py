"""Machine-checked reproducibility of scenario runs and sweeps.

Two guarantees are pinned down here:

* the same master seed produces *identical* metrics across repeated serial
  runs (no hidden global randomness), and
* a parallel :class:`~repro.runtime.sweep.SweepRunner` is bit-identical to a
  serial one — worker count and completion order must never leak into
  results.
"""

from __future__ import annotations

from dataclasses import asdict

import pytest

from repro.runtime import (
    ScenarioSpec,
    SweepRunner,
    derive_scenario_seeds,
    single_kind_scenarios,
)

#: Simulated seconds per scenario — short, the properties are exact either way.
DURATION = 0.25


@pytest.fixture(scope="module")
def sub_grid() -> list[ScenarioSpec]:
    """A 12-scenario single-kind sub-grid covering all three kinds."""
    specs = single_kind_scenarios(
        "Lab", kinds=("NL", "CK", "MD"), loads=("Low", "High"),
        max_pairs_options=(1,), origins=("A", "B"),
        include_md_k255=False, attempt_batch_size=40)
    assert len(specs) == 12
    return specs


@pytest.fixture(scope="module")
def serial_result(sub_grid):
    """One serial sweep over the sub-grid, shared by the tests below."""
    return SweepRunner(sub_grid, DURATION, master_seed=7, workers=1).run()


def test_seed_derivation_is_deterministic_and_distinct():
    seeds = derive_scenario_seeds(1234, 32)
    assert seeds == derive_scenario_seeds(1234, 32)
    assert len(set(seeds)) == 32
    assert all(seed >= 0 for seed in seeds)
    assert derive_scenario_seeds(1235, 32) != seeds
    # Extending the grid must not disturb existing entries (resume relies
    # on it).
    assert derive_scenario_seeds(1234, 40)[:32] == seeds


def test_same_seed_gives_identical_summaries_across_serial_runs(sub_grid,
                                                                serial_result):
    again = SweepRunner(sub_grid, DURATION, master_seed=7, workers=1).run()
    first = serial_result.summaries()
    second = again.summaries()
    assert set(first) == set(second) and len(first) == 12
    for name in first:
        assert asdict(first[name]) == asdict(second[name]), name


def test_parallel_sweep_is_field_for_field_identical_to_serial(sub_grid,
                                                               serial_result):
    parallel = SweepRunner(sub_grid, DURATION, master_seed=7, workers=4).run()
    assert [o.scenario_name for o in parallel.outcomes] == \
        [o.scenario_name for o in serial_result.outcomes]
    assert [o.seed for o in parallel.outcomes] == \
        [o.seed for o in serial_result.outcomes]
    for serial_outcome, parallel_outcome in zip(serial_result.outcomes,
                                                parallel.outcomes):
        assert serial_outcome.ok and parallel_outcome.ok
        assert asdict(serial_outcome.summary) == \
            asdict(parallel_outcome.summary), serial_outcome.scenario_name
        assert serial_outcome.requests_issued == \
            parallel_outcome.requests_issued


def test_different_master_seed_changes_results(sub_grid, serial_result):
    other = SweepRunner(sub_grid, DURATION, master_seed=8, workers=1).run()
    assert [o.seed for o in other.outcomes] != \
        [o.seed for o in serial_result.outcomes]
    # At least one scenario must observe different randomness (all-equal
    # would mean the seed is ignored somewhere).
    assert any(asdict(a.summary) != asdict(b.summary)
               for a, b in zip(serial_result.outcomes, other.outcomes))
