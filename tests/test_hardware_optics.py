"""Tests for the photonic hardware models: emission, heralding, fibre, link."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware.classical_link import (
    frame_error_probability,
    link_budget_db,
    power_margin_db,
    undetected_crc_error_probability,
)
from repro.hardware.emission import (
    analytic_success_probability,
    spin_photon_ket,
    spin_photon_state,
)
from repro.hardware.fiber import (
    fiber_attenuation_db,
    fiber_transmissivity,
    propagation_delay,
)
from repro.hardware.heralding import (
    HeraldedStateSampler,
    HeraldingOutcome,
    MidpointStationModel,
    beam_splitter_kraus,
)
from repro.hardware.parameters import OpticalParameters, lab_scenario, ql2020_scenario
from repro.quantum.states import BellIndex, bell_state


class TestFiber:
    def test_attenuation_is_linear_in_length(self):
        assert fiber_attenuation_db(10.0, 0.5) == pytest.approx(5.0)

    def test_transmissivity_matches_db(self):
        assert fiber_transmissivity(10.0, 0.5) == pytest.approx(10 ** -0.5)

    def test_zero_length_is_lossless(self):
        assert fiber_transmissivity(0.0, 5.0) == pytest.approx(1.0)

    def test_propagation_delay_ql2020(self):
        # ~48.4 us for the 10 km arm quoted in the paper.
        assert propagation_delay(10.0) == pytest.approx(48.4e-6, rel=0.05)

    def test_negative_length_raises(self):
        with pytest.raises(ValueError):
            fiber_transmissivity(-1.0, 0.5)


class TestClassicalLinkModel:
    def test_realistic_distances_are_error_free(self):
        # Paper: 15 km and 20 km links see no frame errors.
        assert frame_error_probability(15.0) < 1e-20
        assert frame_error_probability(20.0) < 1e-15

    def test_exaggerated_splicing_matches_paper_value(self):
        # 30 splices at 0.3 dB on 15 km -> ~4e-8 (Appendix D.6.1).
        probability = frame_error_probability(15.0, splices=30,
                                              splice_loss_db=0.3)
        assert 1e-9 < probability < 1e-6

    def test_long_links_fail(self):
        assert frame_error_probability(45.0) == 1.0

    def test_error_increases_with_distance(self):
        values = [frame_error_probability(d) for d in (10, 20, 30, 38, 41)]
        assert values == sorted(values)

    def test_link_budget_components(self):
        budget = link_budget_db(10.0, 0.5, splices=2, connectors=2)
        assert budget == pytest.approx(10 * 0.5 + 2 * 0.7 + 2 * 0.1 + 3.0)

    def test_power_margin_positive_at_short_distance(self):
        assert power_margin_db(15.0) > 0

    def test_crc_miss_probability_is_negligible(self):
        assert undetected_crc_error_probability(4e-8) < 1e-16

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            frame_error_probability(-1.0)
        with pytest.raises(ValueError):
            undetected_crc_error_probability(2.0)


class TestEmission:
    def test_ideal_ket_amplitudes(self):
        ket = spin_photon_ket(0.25)
        assert abs(ket[0b01]) ** 2 == pytest.approx(0.25)
        assert abs(ket[0b10]) ** 2 == pytest.approx(0.75)

    def test_invalid_alpha_raises(self):
        with pytest.raises(ValueError):
            spin_photon_ket(1.5)

    def test_state_is_valid_density_matrix(self, lab):
        state = spin_photon_state(0.3, lab.optics_a)
        assert state.trace() == pytest.approx(1.0)
        assert state.num_qubits == 2

    def test_photon_loss_reduces_photon_population(self, lab):
        state = spin_photon_state(0.3, lab.optics_a)
        # Probability of the photon being present at the station is heavily
        # reduced by the collection losses (survival ~4e-4).
        photon = state.partial_trace([1])
        p_present = float(np.real(photon.matrix[1, 1]))
        assert p_present < 0.3 * 1e-2

    def test_survival_probability_matches_paper_order(self, lab, ql2020):
        # Lab: total detection efficiency ~4e-4 (excluding the 0.8 detector).
        assert 1e-4 < lab.optics_a.survival_probability() < 1e-3
        # QL2020 arms include fibre loss but cavity enhancement.
        assert 1e-4 < ql2020.optics_a.survival_probability() < 2e-3

    def test_analytic_success_probability_close_to_paper(self, lab):
        # p_succ ~= alpha * 1e-3 (Section 4.4); allow a factor-2 band.
        for alpha in (0.1, 0.3, 0.5):
            p = analytic_success_probability(alpha, lab.optics_a, lab.optics_b)
            assert alpha * 3e-4 < p < alpha * 2e-3


class TestBeamSplitter:
    @pytest.mark.parametrize("visibility", [1.0, 0.9, 0.5, 0.0])
    def test_kraus_operators_form_a_povm(self, visibility):
        kraus = beam_splitter_kraus(math.sqrt(visibility))
        total = sum(op.conj().T @ op for op in kraus.values())
        assert np.allclose(total, np.eye(4), atol=1e-12)

    def test_perfect_visibility_has_no_coincidences_for_indistinguishable(self):
        # Hong-Ou-Mandel: with mu=1, two photons never split between arms.
        kraus = beam_splitter_kraus(1.0)
        both = kraus["both"]
        assert np.allclose(both, np.zeros((4, 4)))

    def test_invalid_overlap_raises(self):
        with pytest.raises(ValueError):
            beam_splitter_kraus(1.5)


class TestMidpointStation:
    def test_outcome_distribution_is_normalised(self, lab):
        from repro.hardware.emission import spin_photon_state

        station = MidpointStationModel(visibility=0.9, p_detection=0.8,
                                       p_dark=1e-6)
        joint = spin_photon_state(0.2, lab.optics_a).tensor(
            spin_photon_state(0.2, lab.optics_b))
        outcomes = station.outcome_distribution(joint)
        assert sum(o.probability for o in outcomes) == pytest.approx(1.0, abs=1e-9)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MidpointStationModel(visibility=1.2)
        with pytest.raises(ValueError):
            MidpointStationModel(p_detection=-0.1)


class TestHeraldedStateSampler:
    def test_success_probability_scales_with_alpha(self, lab):
        p_low = HeraldedStateSampler.for_scenario(lab, 0.1).success_probability
        p_high = HeraldedStateSampler.for_scenario(lab, 0.4).success_probability
        assert p_high > 2.5 * p_low

    def test_success_probability_matches_paper_magnitude(self, lab):
        # Figure 8(b): p_succ ~ 3e-4 at alpha = 0.5.
        sampler = HeraldedStateSampler.for_scenario(lab, 0.5)
        assert 1e-4 < sampler.success_probability < 1e-3

    def test_fidelity_decreases_with_alpha(self, lab):
        f_low = HeraldedStateSampler.for_scenario(lab, 0.05).average_success_fidelity()
        f_high = HeraldedStateSampler.for_scenario(lab, 0.5).average_success_fidelity()
        assert f_low > 0.75
        assert f_high < 0.6
        assert f_low > f_high

    def test_heralded_state_close_to_reported_bell_state(self, lab):
        sampler = HeraldedStateSampler.for_scenario(lab, 0.1)
        for outcome in sampler.outcomes:
            if not outcome.is_success:
                continue
            target = outcome.outcome.bell_index
            assert outcome.state.fidelity_to_pure(bell_state(target)) > 0.7

    def test_sampling_statistics_match_probabilities(self, lab, rng):
        sampler = HeraldedStateSampler.for_scenario(lab, 0.4)
        trials = 20000
        successes = sum(sampler.sample(rng).is_success for _ in range(trials))
        expected = sampler.success_probability * trials
        assert abs(successes - expected) < 5 * math.sqrt(expected + 1)

    def test_sample_success_always_succeeds(self, lab, rng):
        sampler = HeraldedStateSampler.for_scenario(lab, 0.2)
        for _ in range(50):
            outcome = sampler.sample_success(rng)
            assert outcome.is_success
            assert outcome.outcome in (HeraldingOutcome.PSI_PLUS,
                                       HeraldingOutcome.PSI_MINUS)

    def test_batched_attempt_sampling_is_consistent(self, lab, rng):
        sampler = HeraldedStateSampler.for_scenario(lab, 0.3)
        batch = 100
        trials = 3000
        hits = sum(
            sampler.sample_attempts_until_success(rng, batch) is not None
            for _ in range(trials))
        expected = (1 - (1 - sampler.success_probability) ** batch) * trials
        assert abs(hits - expected) < 6 * math.sqrt(expected + 1)

    def test_for_scenario_is_cached(self, lab):
        first = HeraldedStateSampler.for_scenario(lab, 0.25)
        second = HeraldedStateSampler.for_scenario(lab, 0.25)
        assert first is second

    @given(alpha=st.floats(min_value=0.02, max_value=0.6))
    @settings(max_examples=10, deadline=None)
    def test_outcome_probabilities_always_normalised(self, alpha):
        scenario = lab_scenario()
        sampler = HeraldedStateSampler(alpha, alpha, scenario.optics_a,
                                       scenario.optics_b)
        total = sum(o.probability for o in sampler.outcomes)
        assert total == pytest.approx(1.0, abs=1e-6)


class TestScenarioConfigs:
    def test_lab_and_ql2020_names(self, lab, ql2020):
        assert lab.name == "Lab"
        assert ql2020.name == "QL2020"

    def test_ql2020_delays_match_paper(self, ql2020):
        assert ql2020.timing.midpoint_delay_a == pytest.approx(48.4e-6)
        assert ql2020.timing.midpoint_delay_b == pytest.approx(72.6e-6)

    def test_expected_cycles(self, lab, ql2020):
        assert lab.timing.expected_cycles(measure_directly=True) == pytest.approx(1.0)
        assert lab.timing.expected_cycles(measure_directly=False) == pytest.approx(1.1)
        assert ql2020.timing.expected_cycles(measure_directly=False) == pytest.approx(16.0)

    def test_with_frame_loss_returns_new_config(self, lab):
        lossy = lab.with_frame_loss(1e-4)
        assert lossy.classical.frame_loss_probability == pytest.approx(1e-4)
        assert lab.classical.frame_loss_probability == 0.0

    def test_dark_count_probability(self, lab):
        p_dark = lab.optics_a.dark_count_probability()
        assert 0 < p_dark < 1e-5

    def test_invalid_coherence_times(self):
        from repro.hardware.parameters import CoherenceTimes

        with pytest.raises(ValueError):
            CoherenceTimes(t1=-1.0, t2=1.0)
