"""Unit tests for the discrete-event simulation engine."""

from __future__ import annotations

import pytest

from repro.sim.engine import SimulationEngine, SimulationError


class TestScheduling:
    def test_initial_time_is_zero(self):
        assert SimulationEngine().now == 0.0

    def test_custom_start_time(self):
        assert SimulationEngine(start_time=5.0).now == 5.0

    def test_schedule_at_runs_callback_at_time(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(2.5, lambda: fired.append(engine.now))
        engine.run()
        assert fired == [2.5]

    def test_schedule_after_is_relative(self):
        engine = SimulationEngine(start_time=1.0)
        fired = []
        engine.schedule_after(0.5, lambda: fired.append(engine.now))
        engine.run()
        assert fired == [1.5]

    def test_schedule_in_past_raises(self):
        engine = SimulationEngine(start_time=10.0)
        with pytest.raises(SimulationError):
            engine.schedule_at(5.0, lambda: None)

    def test_negative_delay_raises(self):
        engine = SimulationEngine()
        with pytest.raises(SimulationError):
            engine.schedule_after(-1.0, lambda: None)

    def test_events_run_in_time_order(self):
        engine = SimulationEngine()
        order = []
        engine.schedule_at(3.0, lambda: order.append("c"))
        engine.schedule_at(1.0, lambda: order.append("a"))
        engine.schedule_at(2.0, lambda: order.append("b"))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_run_in_insertion_order(self):
        engine = SimulationEngine()
        order = []
        for label in "abc":
            engine.schedule_at(1.0, lambda l=label: order.append(l))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_nested_scheduling(self):
        engine = SimulationEngine()
        fired = []

        def outer():
            fired.append(("outer", engine.now))
            engine.schedule_after(1.0, inner)

        def inner():
            fired.append(("inner", engine.now))

        engine.schedule_at(1.0, outer)
        engine.run()
        assert fired == [("outer", 1.0), ("inner", 2.0)]


class TestRunControl:
    def test_run_until_stops_clock_at_bound(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(1.0, lambda: fired.append(1))
        engine.schedule_at(5.0, lambda: fired.append(5))
        engine.run(until=2.0)
        assert fired == [1]
        assert engine.now == 2.0

    def test_run_until_includes_events_at_bound(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(2.0, lambda: fired.append(2))
        engine.run(until=2.0)
        assert fired == [2]

    def test_remaining_events_run_on_next_call(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(1.0, lambda: fired.append(1))
        engine.schedule_at(3.0, lambda: fired.append(3))
        engine.run(until=2.0)
        engine.run(until=4.0)
        assert fired == [1, 3]

    def test_max_events_limit(self):
        engine = SimulationEngine()
        fired = []
        for i in range(10):
            engine.schedule_at(float(i), lambda i=i: fired.append(i))
        engine.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_processed_event_count(self):
        engine = SimulationEngine()
        for i in range(5):
            engine.schedule_at(float(i), lambda: None)
        engine.run()
        assert engine.processed_events == 5

    def test_step_returns_false_on_empty_queue(self):
        assert SimulationEngine().step() is False

    def test_reset_clears_queue_and_clock(self):
        engine = SimulationEngine()
        engine.schedule_at(1.0, lambda: None)
        engine.run()
        engine.reset()
        assert engine.now == 0.0
        assert engine.pending_events == 0
        assert engine.processed_events == 0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = SimulationEngine()
        fired = []
        handle = engine.schedule_at(1.0, lambda: fired.append(1))
        handle.cancel()
        engine.run()
        assert fired == []
        assert handle.cancelled

    def test_cancel_one_of_many(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(1.0, lambda: fired.append("keep"))
        handle = engine.schedule_at(2.0, lambda: fired.append("drop"))
        engine.schedule_at(3.0, lambda: fired.append("keep2"))
        handle.cancel()
        engine.run()
        assert fired == ["keep", "keep2"]

    def test_handle_reports_time(self):
        engine = SimulationEngine()
        handle = engine.schedule_at(4.0, lambda: None)
        assert handle.time == 4.0
