"""Unit tests for the discrete-event simulation engine."""

from __future__ import annotations

import pytest

from repro.sim.engine import SimulationEngine, SimulationError
from repro.sim.queues import HeapEventQueue


class TestScheduling:
    def test_initial_time_is_zero(self):
        assert SimulationEngine().now == 0.0

    def test_custom_start_time(self):
        assert SimulationEngine(start_time=5.0).now == 5.0

    def test_schedule_at_runs_callback_at_time(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(2.5, lambda: fired.append(engine.now))
        engine.run()
        assert fired == [2.5]

    def test_schedule_after_is_relative(self):
        engine = SimulationEngine(start_time=1.0)
        fired = []
        engine.schedule_after(0.5, lambda: fired.append(engine.now))
        engine.run()
        assert fired == [1.5]

    def test_schedule_in_past_raises(self):
        engine = SimulationEngine(start_time=10.0)
        with pytest.raises(SimulationError):
            engine.schedule_at(5.0, lambda: None)

    def test_negative_delay_raises(self):
        engine = SimulationEngine()
        with pytest.raises(SimulationError):
            engine.schedule_after(-1.0, lambda: None)

    def test_events_run_in_time_order(self):
        engine = SimulationEngine()
        order = []
        engine.schedule_at(3.0, lambda: order.append("c"))
        engine.schedule_at(1.0, lambda: order.append("a"))
        engine.schedule_at(2.0, lambda: order.append("b"))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_run_in_insertion_order(self):
        engine = SimulationEngine()
        order = []
        for label in "abc":
            engine.schedule_at(1.0, lambda l=label: order.append(l))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_nested_scheduling(self):
        engine = SimulationEngine()
        fired = []

        def outer():
            fired.append(("outer", engine.now))
            engine.schedule_after(1.0, inner)

        def inner():
            fired.append(("inner", engine.now))

        engine.schedule_at(1.0, outer)
        engine.run()
        assert fired == [("outer", 1.0), ("inner", 2.0)]


class TestRunControl:
    def test_run_until_stops_clock_at_bound(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(1.0, lambda: fired.append(1))
        engine.schedule_at(5.0, lambda: fired.append(5))
        engine.run(until=2.0)
        assert fired == [1]
        assert engine.now == 2.0

    def test_run_until_includes_events_at_bound(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(2.0, lambda: fired.append(2))
        engine.run(until=2.0)
        assert fired == [2]

    def test_remaining_events_run_on_next_call(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(1.0, lambda: fired.append(1))
        engine.schedule_at(3.0, lambda: fired.append(3))
        engine.run(until=2.0)
        engine.run(until=4.0)
        assert fired == [1, 3]

    def test_max_events_limit(self):
        engine = SimulationEngine()
        fired = []
        for i in range(10):
            engine.schedule_at(float(i), lambda i=i: fired.append(i))
        engine.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_processed_event_count(self):
        engine = SimulationEngine()
        for i in range(5):
            engine.schedule_at(float(i), lambda: None)
        engine.run()
        assert engine.processed_events == 5

    def test_step_returns_false_on_empty_queue(self):
        assert SimulationEngine().step() is False

    def test_reset_clears_queue_and_clock(self):
        engine = SimulationEngine()
        engine.schedule_at(1.0, lambda: None)
        engine.run()
        engine.reset()
        assert engine.now == 0.0
        assert engine.pending_events == 0
        assert engine.processed_events == 0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = SimulationEngine()
        fired = []
        handle = engine.schedule_at(1.0, lambda: fired.append(1))
        handle.cancel()
        engine.run()
        assert fired == []
        assert handle.cancelled

    def test_cancel_one_of_many(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(1.0, lambda: fired.append("keep"))
        handle = engine.schedule_at(2.0, lambda: fired.append("drop"))
        engine.schedule_at(3.0, lambda: fired.append("keep2"))
        handle.cancel()
        engine.run()
        assert fired == ["keep", "keep2"]

    def test_handle_reports_time(self):
        engine = SimulationEngine()
        handle = engine.schedule_at(4.0, lambda: None)
        assert handle.time == 4.0


class TestLazyCompaction:
    """Cancelled events must not accumulate in the heap or inflate counts.

    These tests poke heap-queue internals, so they pin ``queue="heap"``
    explicitly — the suite also runs under ``REPRO_ENGINE=calendar`` in CI,
    and the generic cross-implementation behaviours live in
    ``test_event_queues.py``.
    """

    def test_pending_events_counts_live_only(self):
        engine = SimulationEngine(queue="heap")
        handles = [engine.schedule_at(float(i), lambda: None)
                   for i in range(10)]
        assert engine.pending_events == 10
        for handle in handles[:4]:
            handle.cancel()
        assert engine.pending_events == 6

    def test_double_cancel_counts_once(self):
        engine = SimulationEngine(queue="heap")
        engine.schedule_at(1.0, lambda: None)
        handle = engine.schedule_at(2.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert engine.pending_events == 1

    def test_compaction_shrinks_heap(self):
        engine = SimulationEngine(queue="heap")
        keep = [engine.schedule_at(1000.0 + i, lambda: None)
                for i in range(10)]
        doomed = [engine.schedule_at(float(i), lambda: None)
                  for i in range(200)]
        assert len(engine._queue) == 210
        for handle in doomed:
            handle.cancel()
        # Cancelled events outnumber live ones: the heap was compacted down
        # to the live events plus at most the compaction trigger threshold.
        assert len(engine._queue) <= \
            10 + HeapEventQueue.COMPACTION_MIN_CANCELLED
        assert engine.pending_events == 10
        assert all(not handle.cancelled for handle in keep)

    def test_compaction_preserves_firing_order(self):
        engine = SimulationEngine(queue="heap")
        fired = []
        for i in range(300):
            engine.schedule_at(float(i), lambda i=i: fired.append(i))
        doomed = [engine.schedule_at(0.5, lambda: fired.append("doomed"))
                  for _ in range(400)]
        for handle in doomed:
            handle.cancel()
        engine.run()
        assert fired == list(range(300))

    def test_popping_cancelled_events_updates_counter(self):
        engine = SimulationEngine(queue="heap")
        handles = [engine.schedule_at(float(i), lambda: None)
                   for i in range(30)]
        for handle in handles[:20]:
            handle.cancel()
        engine.run()
        assert engine.pending_events == 0
        assert engine.processed_events == 10

    def test_long_run_with_many_cancellations_stays_bounded(self):
        engine = SimulationEngine(queue="heap")
        fired = 0

        def tick(step=[0]):
            nonlocal fired
            fired += 1
            step[0] += 1
            if step[0] < 2000:
                # Schedule a watchdog and immediately cancel it, as the
                # protocols do for reply timeouts that are answered in time.
                engine.schedule_at(engine.now + 10.0, lambda: None).cancel()
                engine.schedule_at(engine.now + 0.001, tick)

        engine.schedule_at(0.0, tick)
        engine.run()
        assert fired == 2000
        assert len(engine._queue) <= HeapEventQueue.COMPACTION_MIN_CANCELLED * 2

    def test_cancel_after_fire_is_a_noop_for_accounting(self):
        engine = SimulationEngine(queue="heap")
        handle = engine.schedule_at(1.0, lambda: None)
        live = engine.schedule_at(2.0, lambda: None)
        engine.run(until=1.5)
        handle.cancel()
        assert engine.pending_events == 1
        live.cancel()
        assert engine.pending_events == 0

    def test_cancel_after_reset_is_a_noop_for_accounting(self):
        engine = SimulationEngine(queue="heap")
        handle = engine.schedule_at(1.0, lambda: None)
        engine.reset()
        handle.cancel()
        assert engine.pending_events == 0
