"""Tests for workload generation, the runner, metrics and application layers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.metrics import relative_difference
from repro.apps.qkd import QKDSession, bb84_key_fraction, binary_entropy
from repro.apps.teleportation import teleport
from repro.core.messages import Priority, RequestType
from repro.hardware.pair import EntangledPair
from repro.hardware.parameters import lab_scenario
from repro.quantum.density import DensityMatrix
from repro.quantum.fidelity import werner_state
from repro.quantum.states import BellIndex, bell_state, ket0, ket_plus
from repro.runtime.runner import SimulationRun, run_scenario
from repro.runtime.scenarios import (
    USAGE_PATTERNS,
    mixed_kind_scenarios,
    single_kind_scenarios,
    table1_scenarios,
)
from repro.runtime.workload import RequestGenerator, WorkloadSpec


class TestWorkloadSpec:
    def test_priority_implies_request_type(self):
        assert WorkloadSpec(priority=Priority.MD).request_type is RequestType.MEASURE
        assert WorkloadSpec(priority=Priority.NL).request_type is RequestType.KEEP
        assert WorkloadSpec(priority=Priority.CK).request_type is RequestType.KEEP

    def test_generator_issues_requests_at_expected_rate(self):
        from repro.network.network import LinkLayerNetwork

        network = LinkLayerNetwork(lab_scenario(), seed=1, attempt_batch_size=50)
        spec = WorkloadSpec(priority=Priority.CK, load_fraction=0.99,
                            max_pairs=1, origin="A", min_fidelity=0.6)
        generator = RequestGenerator(network, [spec], seed=2)
        expected_rate = generator.expected_request_rate(0)
        generator.start()
        network.run(2.0)
        observed_rate = generator.requests_issued / 2.0
        assert observed_rate == pytest.approx(expected_rate, rel=0.5)

    def test_generator_respects_fixed_pair_count(self):
        from repro.network.network import LinkLayerNetwork

        network = LinkLayerNetwork(lab_scenario(), seed=1, attempt_batch_size=50)
        spec = WorkloadSpec(priority=Priority.MD, load_fraction=1.5,
                            num_pairs=4, origin="A", min_fidelity=0.6)
        generator = RequestGenerator(network, [spec], seed=3)
        issued = []
        original_create = network.node_a.create
        network.node_a.create = lambda req: (issued.append(req.number),
                                             original_create(req))[1]
        generator.start()
        network.run(1.0)
        assert issued and all(n == 4 for n in issued)


class TestSimulationRun:
    def test_lab_ck_run_produces_consistent_summary(self):
        result = run_scenario(
            lab_scenario(),
            [WorkloadSpec(priority=Priority.CK, load_fraction=0.99,
                          max_pairs=1, origin="A", min_fidelity=0.64)],
            duration=2.0, seed=5, attempt_batch_size=100)
        summary = result.summary
        assert summary.pairs_delivered.get("CK", 0) > 0
        assert 0.6 < summary.average_fidelity["CK"] < 0.85
        assert summary.throughput["CK"] > 1.0
        assert summary.oks >= 2 * summary.pairs_delivered["CK"]

    def test_seed_reproducibility(self):
        def run_once():
            return run_scenario(
                lab_scenario(),
                [WorkloadSpec(priority=Priority.MD, load_fraction=0.7,
                              max_pairs=1, origin="A", min_fidelity=0.6)],
                duration=1.0, seed=11, attempt_batch_size=100)

        first = run_once().summary
        second = run_once().summary
        assert first.pairs_delivered == second.pairs_delivered
        assert first.throughput == pytest.approx(second.throughput)

    def test_fairness_between_origins(self):
        result = run_scenario(
            lab_scenario(),
            [WorkloadSpec(priority=Priority.MD, load_fraction=0.99,
                          max_pairs=1, origin="random", min_fidelity=0.6)],
            duration=3.0, seed=6, attempt_batch_size=100)
        fairness = result.metrics.fairness_by_origin()
        total_a = fairness["A"]["oks"]
        total_b = fairness["B"]["oks"]
        assert total_a > 0 and total_b > 0
        assert relative_difference(total_a, total_b) < 0.5


class TestScenarioCatalogue:
    def test_single_kind_grid_sizes(self):
        specs = single_kind_scenarios("Lab", kinds=("MD",), loads=("High",),
                                      max_pairs_options=(1,), origins=("A",))
        # MD always gains the paper's k_max=255 variant alongside k=1.
        assert len(specs) == 2
        assert {spec.workload[0].max_pairs for spec in specs} == {1, 255}
        assert all(spec.name.startswith("Lab_MD_High") for spec in specs)

    def test_md_k255_can_be_disabled_for_exact_subgrids(self):
        specs = single_kind_scenarios("Lab", kinds=("MD",), loads=("High",),
                                      max_pairs_options=(1,), origins=("A",),
                                      include_md_k255=False)
        assert len(specs) == 1
        assert specs[0].workload[0].max_pairs == 1

    def test_full_grid_covers_all_combinations(self):
        specs = single_kind_scenarios("Lab")
        # NL/CK: 3 loads x 2 kmax x 3 origins = 18 each; MD additionally has
        # the k_max=255 column: 3 x 3 x 3 = 27.  63 scenarios per hardware.
        assert len(specs) == 63

    def test_mixed_scenarios_include_schedulers(self):
        specs = mixed_kind_scenarios("QL2020", patterns=("Uniform",),
                                     schedulers=("FCFS", "HigherWFQ"))
        names = {spec.scheduler for spec in specs}
        assert names == {"FCFS", "HigherWFQ"}

    def test_usage_patterns_match_paper_table2(self):
        pattern = USAGE_PATTERNS["NoNLMoreMD"]
        fractions = {spec.priority: spec.load_fraction for spec in pattern.specs}
        assert Priority.NL not in fractions
        assert fractions[Priority.MD] == pytest.approx(0.99 * 4 / 5)
        assert fractions[Priority.CK] == pytest.approx(0.99 / 5)

    def test_table1_scenarios(self):
        specs = table1_scenarios()
        assert len(specs) == 4
        for spec in specs:
            pair_counts = {s.priority: s.num_pairs for s in spec.workload}
            assert pair_counts[Priority.MD] == 10


class TestRelativeDifference:
    def test_identical_values(self):
        assert relative_difference(3.0, 3.0) == 0.0

    def test_zero_handling(self):
        assert relative_difference(0.0, 0.0) == 0.0

    def test_matches_paper_definition(self):
        assert relative_difference(2.0, 1.0) == pytest.approx(0.5)


class TestQKD:
    def test_binary_entropy_limits(self):
        assert binary_entropy(0.0) == 0.0
        assert binary_entropy(0.5) == pytest.approx(1.0)

    def test_key_fraction_zero_beyond_11_percent(self):
        assert bb84_key_fraction(0.0) == pytest.approx(1.0)
        assert bb84_key_fraction(0.12) == 0.0

    def test_qkd_session_on_md_workload(self):
        from repro.network.network import LinkLayerNetwork
        from repro.core.messages import EntanglementRequest

        network = LinkLayerNetwork(lab_scenario(), seed=21,
                                   attempt_batch_size=100)
        session = QKDSession()
        session.attach(network)
        request = EntanglementRequest(remote_node_id="B", number=40,
                                      request_type=RequestType.MEASURE,
                                      priority=Priority.MD, consecutive=True,
                                      min_fidelity=0.6)
        network.node_a.create(request)
        network.run(10.0)
        stats = session.statistics()
        assert stats.raw_pairs >= 20
        assert stats.sifted_bits > 0
        assert stats.qber is not None and stats.qber < 0.35

    def test_invalid_entropy_argument(self):
        with pytest.raises(ValueError):
            binary_entropy(1.5)


class TestTeleportation:
    def make_pair(self, fidelity=1.0):
        if fidelity >= 1.0:
            state = DensityMatrix.from_ket(bell_state(BellIndex.PSI_PLUS))
        else:
            state = DensityMatrix(werner_state(fidelity, BellIndex.PSI_PLUS))
        return EntangledPair(state=state, heralded_bell=BellIndex.PSI_PLUS,
                             created_at=0.0, corrected=True)

    @pytest.mark.parametrize("ket", [ket0(), ket_plus(),
                                     np.array([0.6, 0.8j], dtype=complex)])
    def test_perfect_pair_teleports_exactly(self, ket, rng):
        result = teleport(ket, self.make_pair(), rng=rng)
        assert result.fidelity == pytest.approx(1.0, abs=1e-9)

    def test_noisy_pair_limits_teleportation_fidelity(self, rng):
        fidelities = []
        for _ in range(20):
            result = teleport(ket_plus(), self.make_pair(fidelity=0.75), rng=rng)
            fidelities.append(result.fidelity)
        average = np.mean(fidelities)
        assert 0.55 < average < 0.95

    def test_invalid_input_state(self, rng):
        with pytest.raises(ValueError):
            teleport(np.zeros(2), self.make_pair(), rng=rng)
        with pytest.raises(ValueError):
            teleport(np.ones(4), self.make_pair(), rng=rng)
