"""Tests for the NV quantum processor model and entangled-pair bookkeeping."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.hardware.nv_device import (
    NVQuantumProcessor,
    OutOfQubitsError,
    QubitRole,
)
from repro.hardware.pair import EntangledPair
from repro.hardware.parameters import NVGateParameters
from repro.quantum.density import DensityMatrix
from repro.quantum.states import BellIndex, bell_state


def make_pair(bell: BellIndex = BellIndex.PSI_PLUS,
              created_at: float = 0.0) -> EntangledPair:
    return EntangledPair(state=DensityMatrix.from_ket(bell_state(bell)),
                         heralded_bell=bell, created_at=created_at,
                         midpoint_sequence=1)


@pytest.fixture
def device(rng):
    return NVQuantumProcessor("A", NVGateParameters(), num_communication=1,
                              num_memory=1, rng=rng)


class TestQubitSlots:
    def test_slot_inventory(self, device):
        roles = [slot.role for slot in device.slots]
        assert roles.count(QubitRole.COMMUNICATION) == 1
        assert roles.count(QubitRole.MEMORY) == 1

    def test_reserve_and_release(self, device):
        slot = device.reserve(QubitRole.COMMUNICATION)
        assert slot.in_use
        assert device.free_slots(QubitRole.COMMUNICATION) == []
        device.release(slot)
        assert len(device.free_slots(QubitRole.COMMUNICATION)) == 1

    def test_reserve_exhaustion_raises(self, device):
        device.reserve(QubitRole.MEMORY)
        with pytest.raises(OutOfQubitsError):
            device.reserve(QubitRole.MEMORY)

    def test_slot_by_id(self, device):
        assert device.slot_by_id(0).qubit_id == 0
        with pytest.raises(KeyError):
            device.slot_by_id(99)

    def test_invalid_node_name(self):
        with pytest.raises(ValueError):
            NVQuantumProcessor("C", NVGateParameters())


class TestNoiseApplication:
    def test_idle_decay_reduces_fidelity(self, device):
        pair = make_pair()
        slot = device.slot_by_id(0)
        device.apply_idle_decay(pair, slot, duration=0.5e-3)
        assert pair.fidelity(BellIndex.PSI_PLUS) < 1.0

    def test_zero_duration_decay_is_noop(self, device):
        pair = make_pair()
        slot = device.slot_by_id(0)
        device.apply_idle_decay(pair, slot, duration=0.0)
        assert pair.fidelity(BellIndex.PSI_PLUS) == pytest.approx(1.0)

    def test_memory_qubit_decays_slower_than_electron(self, rng):
        gates = NVGateParameters()
        device = NVQuantumProcessor("A", gates, rng=rng)
        duration = 1e-3
        electron_pair, memory_pair = make_pair(), make_pair()
        device.apply_idle_decay(electron_pair, device.slot_by_id(0), duration)
        device.apply_idle_decay(memory_pair, device.slot_by_id(1), duration)
        assert (memory_pair.fidelity(BellIndex.PSI_PLUS)
                > electron_pair.fidelity(BellIndex.PSI_PLUS))

    def test_move_to_memory_applies_gate_noise_and_rebinds(self, device):
        pair = make_pair()
        comm = device.reserve(QubitRole.COMMUNICATION)
        memory = device.reserve(QubitRole.MEMORY)
        duration = device.move_to_memory(pair, comm, memory)
        assert duration == pytest.approx(
            NVGateParameters().swap_to_memory_duration)
        assert memory.pair is pair
        assert not comm.in_use
        assert pair.qubit_ids["A"] == memory.qubit_id
        # Two imperfect E-C gates leave the fidelity slightly below 1.
        assert 0.95 < pair.fidelity(BellIndex.PSI_PLUS) < 1.0

    def test_attempt_dephasing_only_affects_memory_slots(self, device):
        pair_comm, pair_mem = make_pair(), make_pair()
        device.apply_attempt_dephasing(pair_comm, device.slot_by_id(0),
                                       attempts=100, alpha=0.3)
        device.apply_attempt_dephasing(pair_mem, device.slot_by_id(1),
                                       attempts=100, alpha=0.3)
        assert pair_comm.fidelity(BellIndex.PSI_PLUS) == pytest.approx(1.0)
        assert pair_mem.fidelity(BellIndex.PSI_PLUS) < 1.0

    def test_more_attempts_cause_more_dephasing(self, device):
        slot = device.slot_by_id(1)
        few, many = make_pair(), make_pair()
        device.apply_attempt_dephasing(few, slot, attempts=10, alpha=0.3)
        device.apply_attempt_dephasing(many, slot, attempts=1000, alpha=0.3)
        assert few.fidelity(BellIndex.PSI_PLUS) > many.fidelity(BellIndex.PSI_PLUS)

    def test_correction_converts_psi_minus_to_psi_plus(self, device):
        pair = make_pair(BellIndex.PSI_MINUS)
        device.apply_correction(pair)
        assert pair.fidelity(BellIndex.PSI_PLUS) == pytest.approx(1.0, abs=1e-9)


class TestMeasurement:
    def test_z_measurements_anticorrelated_for_psi_plus(self, rng):
        gates = NVGateParameters(readout_fidelity_0=1.0, readout_fidelity_1=1.0)
        device_a = NVQuantumProcessor("A", gates, rng=rng)
        device_b = NVQuantumProcessor("B", gates, rng=rng)
        mismatches = 0
        for _ in range(30):
            pair = make_pair(BellIndex.PSI_PLUS)
            a = device_a.measure_pair(pair, basis="Z")
            b = device_b.measure_pair(pair, basis="Z")
            mismatches += int(a != b)
        assert mismatches == 30

    def test_x_measurements_correlated_for_psi_plus(self, rng):
        gates = NVGateParameters(readout_fidelity_0=1.0, readout_fidelity_1=1.0)
        device_a = NVQuantumProcessor("A", gates, rng=rng)
        device_b = NVQuantumProcessor("B", gates, rng=rng)
        matches = 0
        for _ in range(30):
            pair = make_pair(BellIndex.PSI_PLUS)
            a = device_a.measure_pair(pair, basis="X")
            b = device_b.measure_pair(pair, basis="X")
            matches += int(a == b)
        assert matches == 30

    def test_readout_noise_introduces_errors(self, rng):
        noisy = NVGateParameters(readout_fidelity_0=0.5, readout_fidelity_1=0.5)
        device_a = NVQuantumProcessor("A", noisy, rng=rng)
        device_b = NVQuantumProcessor("B", noisy, rng=rng)
        mismatches = 0
        trials = 200
        for _ in range(trials):
            pair = make_pair(BellIndex.PSI_PLUS)
            mismatches += int(device_a.measure_pair(pair, basis="Z")
                              != device_b.measure_pair(pair, basis="Z"))
        # Random readout destroys the perfect anti-correlation.
        assert 0.3 < mismatches / trials < 0.7

    def test_unknown_basis_raises(self, device):
        with pytest.raises(ValueError):
            device.measure_pair(make_pair(), basis="Q")


class TestEntangledPair:
    def test_side_index_validation(self):
        pair = make_pair()
        with pytest.raises(ValueError):
            pair.apply_one_sided_unitary(np.eye(2), side="C")

    def test_fidelity_target_defaults_to_heralded_state(self):
        pair = make_pair(BellIndex.PSI_MINUS)
        assert pair.fidelity() == pytest.approx(1.0)
        pair.corrected = True
        assert pair.fidelity() == pytest.approx(0.0, abs=1e-9)

    def test_measure_side(self, rng):
        pair = make_pair(BellIndex.PSI_PLUS)
        a = pair.measure_side("A", "Z", rng=rng)
        b = pair.measure_side("B", "Z", rng=rng)
        assert a != b

    def test_memory_reinit_overhead(self, device):
        overhead = device.memory_reinit_overhead()
        assert overhead == pytest.approx(330e-6 / 3500e-6)
