"""Unit tests for classical/quantum channels and the MHP clock."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.channel import (
    ClassicalChannel,
    QuantumChannel,
    FIBRE_LIGHT_SPEED_KM_S,
    fibre_delay,
)
from repro.sim.clock import Clock
from repro.sim.engine import SimulationEngine


class TestFibreDelay:
    def test_delay_scales_with_length(self):
        assert fibre_delay(25.0) == pytest.approx(25.0 / FIBRE_LIGHT_SPEED_KM_S)

    def test_zero_length(self):
        assert fibre_delay(0.0) == 0.0

    def test_negative_length_raises(self):
        with pytest.raises(ValueError):
            fibre_delay(-1.0)


class TestClassicalChannel:
    def test_delivers_after_delay(self, engine):
        channel = ClassicalChannel(engine, delay=0.5)
        received = []
        channel.connect(lambda msg: received.append((engine.now, msg)))
        channel.send("hello")
        engine.run()
        assert received == [(0.5, "hello")]

    def test_preserves_message_order(self, engine):
        channel = ClassicalChannel(engine, delay=0.1)
        received = []
        channel.connect(received.append)
        for i in range(5):
            channel.send(i)
        engine.run()
        assert received == [0, 1, 2, 3, 4]

    def test_send_without_receiver_raises(self, engine):
        channel = ClassicalChannel(engine, delay=0.1)
        with pytest.raises(RuntimeError):
            channel.send("x")

    def test_zero_loss_never_drops(self, engine):
        channel = ClassicalChannel(engine, delay=0.0, loss_probability=0.0)
        received = []
        channel.connect(received.append)
        for i in range(100):
            channel.send(i)
        engine.run()
        assert len(received) == 100
        assert channel.messages_lost == 0

    def test_full_loss_drops_everything(self, engine):
        channel = ClassicalChannel(engine, delay=0.0, loss_probability=1.0)
        received = []
        channel.connect(received.append)
        for i in range(50):
            channel.send(i)
        engine.run()
        assert received == []
        assert channel.messages_lost == 50

    def test_partial_loss_statistics(self, engine):
        rng = np.random.default_rng(7)
        channel = ClassicalChannel(engine, delay=0.0, loss_probability=0.3,
                                   rng=rng)
        received = []
        channel.connect(received.append)
        total = 2000
        for i in range(total):
            channel.send(i)
        engine.run()
        loss_rate = channel.messages_lost / total
        assert 0.25 < loss_rate < 0.35
        assert len(received) == total - channel.messages_lost

    def test_invalid_parameters(self, engine):
        with pytest.raises(ValueError):
            ClassicalChannel(engine, delay=-1.0)
        with pytest.raises(ValueError):
            ClassicalChannel(engine, delay=0.0, loss_probability=1.5)

    def test_history_recording(self, engine):
        channel = ClassicalChannel(engine, delay=0.2)
        channel.record_history = True
        channel.connect(lambda m: None)
        channel.send("payload")
        engine.run()
        assert len(channel.history) == 1
        assert channel.history[0].delivered_at == pytest.approx(0.2)
        assert channel.history[0].lost is False


class TestQuantumChannel:
    def test_delivers_payload_after_delay(self, engine):
        channel = QuantumChannel(engine, delay=1e-4)
        received = []
        channel.connect(lambda q: received.append((engine.now, q)))
        channel.send("photon")
        engine.run()
        assert received == [(1e-4, "photon")]
        assert channel.qubits_sent == 1

    def test_requires_receiver(self, engine):
        channel = QuantumChannel(engine, delay=0.0)
        with pytest.raises(RuntimeError):
            channel.send("photon")


class TestClock:
    def test_ticks_at_fixed_period(self, engine):
        clock = Clock(engine, period=0.1)
        ticks = []
        clock.add_listener(lambda n: ticks.append((n, engine.now)))
        clock.start()
        engine.run(until=0.35)
        assert [t for _, t in ticks] == pytest.approx([0.0, 0.1, 0.2, 0.3])

    def test_cycle_time_conversions_roundtrip(self, engine):
        clock = Clock(engine, period=10e-6)
        for cycle in (0, 1, 7, 1000):
            assert clock.time_to_cycle(clock.cycle_to_time(cycle)) == cycle

    def test_next_cycle_at_or_after(self, engine):
        clock = Clock(engine, period=1.0)
        assert clock.next_cycle_at_or_after(0.0) == 0
        assert clock.next_cycle_at_or_after(0.5) == 1
        assert clock.next_cycle_at_or_after(2.0) == 2

    def test_stop_prevents_further_ticks(self, engine):
        clock = Clock(engine, period=0.1)
        ticks = []
        clock.add_listener(lambda n: ticks.append(n))
        clock.start()
        engine.run(until=0.15)
        clock.stop()
        engine.run(until=1.0)
        assert len(ticks) == 2

    def test_invalid_period(self, engine):
        with pytest.raises(ValueError):
            Clock(engine, period=0.0)
