"""Tests for the parallel sweep subsystem (seeds, JSON, cache, failures)."""

from __future__ import annotations

import json

import pytest

from repro.core.messages import Priority
from repro.hardware.parameters import lab_scenario
from repro.runtime import (
    ScenarioSpec,
    SweepResult,
    SweepRunner,
    WorkloadSpec,
    paper_grid,
    run_sweep,
    single_kind_scenarios,
)

DURATION = 0.2


def small_grid(count: int = 2) -> list[ScenarioSpec]:
    specs = single_kind_scenarios(
        "Lab", kinds=("MD", "CK"), loads=("High",), max_pairs_options=(1,),
        origins=("A",), include_md_k255=False, attempt_batch_size=40)
    return specs[:count]


def failing_spec(name: str = "broken") -> ScenarioSpec:
    workload = WorkloadSpec(priority=Priority.MD, load_fraction=0.99)
    return ScenarioSpec(name=name, scenario=lab_scenario(),
                        workload=(workload,), scheduler="NoSuchScheduler")


class TestSeedSpawning:
    def test_seeds_depend_only_on_master_seed_and_index(self):
        runner_a = SweepRunner(small_grid(2), DURATION, master_seed=5)
        runner_b = SweepRunner(small_grid(2), DURATION, master_seed=5,
                               workers=4)
        assert runner_a.scenario_seeds() == runner_b.scenario_seeds()

    def test_seeds_are_distinct_per_scenario(self):
        runner = SweepRunner(paper_grid(), DURATION, master_seed=5)
        seeds = runner.scenario_seeds()
        assert len(set(seeds)) == len(seeds) == 169

    def test_outcomes_record_their_derived_seed(self):
        runner = SweepRunner(small_grid(2), DURATION, master_seed=5)
        result = runner.run()
        assert [o.seed for o in result.outcomes] == runner.scenario_seeds()

    def test_unseeded_sweep_resolves_a_reproducible_master_seed(self):
        specs = small_grid(1)
        first = SweepRunner(specs, DURATION, master_seed=None)
        second = SweepRunner(specs, DURATION, master_seed=None)
        # Fresh entropy per runner (also with seed_key), but recorded so the
        # run can be reproduced.
        assert isinstance(first.master_seed, int)
        assert first.master_seed != second.master_seed
        keyed = SweepRunner(specs, DURATION, master_seed=None,
                            seed_key=lambda spec: spec.name)
        assert keyed.scenario_seeds() == keyed.scenario_seeds()
        assert keyed.scenario_seeds() != \
            SweepRunner(specs, DURATION, master_seed=None,
                        seed_key=lambda spec: spec.name).scenario_seeds()

    def test_duplicate_scenario_names_rejected(self):
        specs = small_grid(1) * 2
        with pytest.raises(ValueError, match="duplicate"):
            SweepRunner(specs, DURATION)

    def test_seed_key_groups_share_a_seed(self):
        # Pair scenarios by their workload kind: same kind -> same arrival
        # randomness (the paper's scheduler comparisons rely on this).
        specs = small_grid(2)
        runner = SweepRunner(specs * 1, DURATION, master_seed=5,
                             seed_key=lambda spec: "shared")
        seeds = runner.scenario_seeds()
        assert len(set(seeds)) == 1
        per_name = SweepRunner(specs, DURATION, master_seed=5,
                               seed_key=lambda spec: spec.name)
        assert len(set(per_name.scenario_seeds())) == 2
        # Keyed seeds are stable across runner instances and list order.
        reordered = SweepRunner(list(reversed(specs)), DURATION, master_seed=5,
                                seed_key=lambda spec: spec.name)
        assert dict(zip([s.name for s in reordered.scenarios],
                        reordered.scenario_seeds())) == \
            dict(zip([s.name for s in per_name.scenarios],
                     per_name.scenario_seeds()))


class TestSerialization:
    @pytest.fixture(scope="class")
    def result(self) -> SweepResult:
        return run_sweep(small_grid(2), DURATION, master_seed=11)

    def test_json_round_trip_is_lossless(self, result):
        restored = SweepResult.from_json(result.to_json())
        assert restored.master_seed == result.master_seed
        assert restored.duration == result.duration
        assert restored.outcomes == result.outcomes
        assert restored.summaries() == result.summaries()

    def test_json_is_plain_data(self, result):
        data = json.loads(result.to_json())
        assert {o["scenario_name"] for o in data["outcomes"]} == \
            set(result.summaries())

    def test_save_and_load(self, result, tmp_path):
        path = tmp_path / "sweep.json"
        result.save(path)
        assert SweepResult.load(path).outcomes == result.outcomes


class TestResumeFromCache:
    def test_rerun_hits_cache_for_every_scenario(self, tmp_path):
        specs = small_grid(2)
        first = run_sweep(specs, DURATION, master_seed=3, cache_dir=tmp_path)
        assert not any(o.from_cache for o in first.outcomes)
        executed = []
        second = SweepRunner(specs, DURATION, master_seed=3,
                             cache_dir=tmp_path,
                             on_outcome=executed.append).run()
        assert all(o.from_cache for o in second.outcomes)
        assert len(executed) == 2
        assert second.summaries() == first.summaries()

    def test_interrupted_sweep_resumes_where_it_left_off(self, tmp_path):
        specs = small_grid(2)
        # "Interrupted" sweep: only the first scenario completed.
        run_sweep(specs[:1], DURATION, master_seed=3, cache_dir=tmp_path)
        result = run_sweep(specs, DURATION, master_seed=3,
                           cache_dir=tmp_path)
        assert [o.from_cache for o in result.outcomes] == [True, False]
        assert all(o.ok for o in result.outcomes)

    def test_changed_parameters_miss_the_cache(self, tmp_path):
        specs = small_grid(1)
        run_sweep(specs, DURATION, master_seed=3, cache_dir=tmp_path)
        result = run_sweep(specs, DURATION, master_seed=4,
                           cache_dir=tmp_path)
        assert not result.outcomes[0].from_cache

    def test_changed_hardware_parameters_miss_the_cache(self, tmp_path):
        import dataclasses

        specs = small_grid(1)
        run_sweep(specs, DURATION, master_seed=3, cache_dir=tmp_path)
        # Same scenario name, different physics: must be resimulated.
        stressed = dataclasses.replace(
            specs[0], scenario=specs[0].scenario.with_frame_loss(0.01))
        result = run_sweep([stressed], DURATION, master_seed=3,
                           cache_dir=tmp_path)
        assert not result.outcomes[0].from_cache

    def test_corrupt_cache_entry_is_recomputed(self, tmp_path):
        specs = small_grid(1)
        run_sweep(specs, DURATION, master_seed=3, cache_dir=tmp_path)
        for entry in tmp_path.glob("*.json"):
            entry.write_text("{not json")
        result = run_sweep(specs, DURATION, master_seed=3,
                           cache_dir=tmp_path)
        assert result.outcomes[0].ok
        assert not result.outcomes[0].from_cache


class TestFailureIsolation:
    def test_failing_scenario_reports_instead_of_hanging(self):
        specs = small_grid(2) + [failing_spec()]
        result = run_sweep(specs, DURATION, master_seed=9, workers=2)
        assert len(result.outcomes) == 3
        assert len(result.completed) == 2
        (failed,) = result.failed
        assert failed.scenario_name == "broken"
        assert failed.summary is None
        assert "NoSuchScheduler" in failed.error

    def test_failures_are_not_cached(self, tmp_path):
        specs = [failing_spec()]
        run_sweep(specs, DURATION, master_seed=9, cache_dir=tmp_path)
        result = run_sweep(specs, DURATION, master_seed=9,
                           cache_dir=tmp_path)
        assert not result.outcomes[0].from_cache  # retried, not replayed

    def test_failed_outcome_survives_json_round_trip(self):
        result = run_sweep([failing_spec()], DURATION, master_seed=9)
        restored = SweepResult.from_json(result.to_json())
        assert restored.outcomes[0].status == "error"
        assert "NoSuchScheduler" in restored.outcomes[0].error


class TestPaperGrid:
    def test_paper_grid_has_169_unique_scenarios(self):
        grid = paper_grid()
        assert len(grid) == 169
        assert len({spec.name for spec in grid}) == 169

    def test_paper_grid_includes_md_k255(self):
        names = {spec.name for spec in paper_grid()}
        assert "Lab_MD_High_k255_originA" in names
        assert "QL2020_MD_Ultra_k255_originR" in names

    def test_paper_grid_composition(self):
        grid = paper_grid(include_mixed=False, include_table1=False,
                          include_robustness=False)
        assert len(grid) == 126  # single-kind grid over both hardware setups


class TestCacheReport:
    """Entries from a different cache version or backend are skipped with a
    reason, not silently recomputed (PR 3 satellite)."""

    def run_with_report(self, specs, tmp_path, **kwargs):
        runner = SweepRunner(specs, DURATION, master_seed=3,
                             cache_dir=tmp_path, **kwargs)
        result = runner.run()
        return result, runner.cache_report()

    def test_hits_and_misses_are_reported(self, tmp_path):
        specs = small_grid(2)
        _, first = self.run_with_report(specs, tmp_path)
        assert first.counts() == {"hits": 0, "misses": 2, "skips": 0}
        _, second = self.run_with_report(specs, tmp_path)
        assert second.counts() == {"hits": 2, "misses": 0, "skips": 0}
        assert "2 hit(s)" in second.describe()

    def test_version_mismatch_is_skipped_with_reason(self, tmp_path):
        import json as json_module

        specs = small_grid(1)
        self.run_with_report(specs, tmp_path)
        (entry,) = tmp_path.glob("*.json")
        data = json_module.loads(entry.read_text())
        data["cache_version"] = 1
        entry.write_text(json_module.dumps(data))
        result, report = self.run_with_report(specs, tmp_path)
        assert report.counts() == {"hits": 0, "misses": 0, "skips": 1}
        assert "cache version 1" in report.skips[0].reason
        assert not result.outcomes[0].from_cache
        assert result.outcomes[0].ok  # recomputed (and re-cached)

    def test_backend_mismatch_is_skipped_with_reason(self, tmp_path):
        import dataclasses

        # Pin both backends explicitly so the test is immune to the
        # REPRO_BACKEND the suite happens to run under.
        specs = [dataclasses.replace(small_grid(1)[0], backend="density")]
        self.run_with_report(specs, tmp_path)  # cached under density
        analytic = [dataclasses.replace(specs[0], backend="analytic")]
        result, report = self.run_with_report(analytic, tmp_path)
        assert report.counts()["skips"] == 1
        assert "'density'" in report.skips[0].reason
        assert "'analytic'" in report.skips[0].reason
        assert not result.outcomes[0].from_cache
        # Both backends now coexist in the cache: each hits its own entry.
        _, density_again = self.run_with_report(specs, tmp_path)
        _, analytic_again = self.run_with_report(analytic, tmp_path)
        assert density_again.counts()["hits"] == 1
        assert analytic_again.counts()["hits"] == 1

    def test_corrupt_entry_is_skipped_with_reason(self, tmp_path):
        specs = small_grid(1)
        self.run_with_report(specs, tmp_path)
        for entry in tmp_path.glob("*.json"):
            entry.write_text("{not json")
        result, report = self.run_with_report(specs, tmp_path)
        assert report.counts()["skips"] == 1
        assert "corrupt" in report.skips[0].reason
        assert result.outcomes[0].ok

    def test_report_resets_between_runs(self, tmp_path):
        specs = small_grid(1)
        runner = SweepRunner(specs, DURATION, master_seed=3,
                             cache_dir=tmp_path)
        runner.run()
        assert runner.cache_report().counts()["misses"] == 1
        runner.run()
        assert runner.cache_report().counts() == \
            {"hits": 1, "misses": 0, "skips": 0}
