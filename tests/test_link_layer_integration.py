"""Integration tests: the full MHP + EGP stack on a wired two-node network."""

from __future__ import annotations

import pytest

from repro.core.messages import (
    EntanglementRequest,
    ErrorCode,
    Priority,
    RequestType,
)
from repro.hardware.parameters import lab_scenario
from repro.network.network import LinkLayerNetwork
from repro.quantum.states import BellIndex


def collect(network):
    """Attach OK / error collectors to both nodes.

    Delivered create-and-keep pairs are released immediately, modelling a
    higher layer that consumes entanglement as soon as it is handed over
    (the single carbon memory would otherwise block further generation).
    """
    oks = {"A": [], "B": []}
    errors = {"A": [], "B": []}

    def on_ok(node_name, ok):
        oks[node_name].append(ok)
        if ok.logical_qubit_id is not None:
            network.nodes[node_name].egp.release_delivered_pair(
                ok.logical_qubit_id)

    for name, node in network.nodes.items():
        node.egp.add_ok_listener(lambda ok, n=name: on_ok(n, ok))
        node.egp.add_error_listener(lambda err, n=name: errors[n].append(err))
    return oks, errors


def make_network(scenario=None, **kwargs):
    scenario = scenario or lab_scenario()
    kwargs.setdefault("seed", 7)
    kwargs.setdefault("attempt_batch_size", 50)
    return LinkLayerNetwork(scenario, **kwargs)


class TestKeepRequests:
    def test_single_pair_is_delivered_at_both_nodes(self):
        network = make_network()
        oks, errors = collect(network)
        request = EntanglementRequest(remote_node_id="B",
                                      request_type=RequestType.KEEP,
                                      number=1, consecutive=True,
                                      priority=Priority.CK, min_fidelity=0.6)
        network.node_a.create(request)
        network.run(2.0)
        assert len(oks["A"]) == 1
        assert len(oks["B"]) == 1
        assert not errors["A"] and not errors["B"]
        ok_a, ok_b = oks["A"][0], oks["B"][0]
        assert ok_a.entanglement_id == ok_b.entanglement_id
        assert ok_a.logical_qubit_id is not None
        assert ok_a.create_id == request.create_id

    def test_delivered_pair_meets_fidelity_target(self):
        network = make_network()
        oks, _ = collect(network)
        request = EntanglementRequest(remote_node_id="B", number=1,
                                      request_type=RequestType.KEEP,
                                      consecutive=True, min_fidelity=0.6)
        network.node_a.create(request)
        network.run(2.0)
        pair = oks["A"][0].pair
        assert pair.fidelity(BellIndex.PSI_PLUS) >= 0.6
        assert oks["A"][0].goodness >= 0.6

    def test_multi_pair_request_delivers_all_pairs(self):
        network = make_network()
        oks, errors = collect(network)
        request = EntanglementRequest(remote_node_id="B", number=3,
                                      request_type=RequestType.KEEP,
                                      consecutive=True, min_fidelity=0.6)
        network.node_a.create(request)
        network.run(4.0)
        assert len(oks["A"]) == 3
        indices = sorted(ok.pair_index for ok in oks["A"])
        assert indices == [1, 2, 3]
        assert oks["A"][-1].is_final

    def test_request_from_slave_node_b(self):
        network = make_network()
        oks, errors = collect(network)
        request = EntanglementRequest(remote_node_id="A", number=1,
                                      request_type=RequestType.KEEP,
                                      consecutive=True, min_fidelity=0.6)
        network.node_b.create(request)
        network.run(2.0)
        assert len(oks["B"]) == 1
        assert not errors["B"]

    def test_non_consecutive_request_buffers_oks_until_completion(self):
        # Measure-directly so that buffering OKs does not tie up the single
        # carbon memory (the paper's workloads always use per-pair OKs for K).
        network = make_network()
        oks, _ = collect(network)
        request = EntanglementRequest(remote_node_id="B", number=2,
                                      request_type=RequestType.MEASURE,
                                      priority=Priority.MD,
                                      consecutive=False, min_fidelity=0.6)
        network.node_a.create(request)
        network.run(4.0)
        # Both OKs arrive, and only once the whole request completed (the
        # goodness_time of each OK records when its pair was produced, which
        # is earlier than the emission time for all but the last pair).
        assert len(oks["A"]) == 2
        assert {ok.pair_index for ok in oks["A"]} == {1, 2}

    def test_expected_sequence_advances(self):
        network = make_network()
        collect(network)
        request = EntanglementRequest(remote_node_id="B", number=2,
                                      request_type=RequestType.KEEP,
                                      consecutive=True, min_fidelity=0.6)
        network.node_a.create(request)
        network.run(4.0)
        assert network.node_a.egp.expected_sequence == 3
        assert network.node_b.egp.expected_sequence == 3


class TestMeasureRequests:
    def test_md_request_returns_outcomes_and_bases(self):
        network = make_network()
        oks, errors = collect(network)
        request = EntanglementRequest(remote_node_id="B", number=5,
                                      request_type=RequestType.MEASURE,
                                      consecutive=True, priority=Priority.MD,
                                      min_fidelity=0.6)
        network.node_a.create(request)
        network.run(3.0)
        assert len(oks["A"]) == 5
        for ok in oks["A"]:
            assert ok.measurement_outcome in (0, 1)
            assert ok.measurement_basis in ("X", "Y", "Z")
            assert ok.logical_qubit_id is None

    def test_md_bases_agree_between_nodes(self):
        network = make_network()
        oks, _ = collect(network)
        request = EntanglementRequest(remote_node_id="B", number=8,
                                      request_type=RequestType.MEASURE,
                                      consecutive=True, priority=Priority.MD,
                                      min_fidelity=0.6)
        network.node_a.create(request)
        network.run(4.0)
        by_id_a = {tuple(ok.entanglement_id): ok for ok in oks["A"]}
        by_id_b = {tuple(ok.entanglement_id): ok for ok in oks["B"]}
        assert set(by_id_a) == set(by_id_b)
        for key in by_id_a:
            assert by_id_a[key].measurement_basis == by_id_b[key].measurement_basis

    def test_md_z_outcomes_mostly_anticorrelated(self):
        network = make_network()
        oks, _ = collect(network)
        request = EntanglementRequest(remote_node_id="B", number=30,
                                      request_type=RequestType.MEASURE,
                                      consecutive=True, priority=Priority.MD,
                                      min_fidelity=0.6, measure_basis="Z")
        network.node_a.create(request)
        network.run(8.0)
        by_id_a = {tuple(ok.entanglement_id): ok for ok in oks["A"]}
        by_id_b = {tuple(ok.entanglement_id): ok for ok in oks["B"]}
        keys = set(by_id_a) & set(by_id_b)
        assert len(keys) >= 20
        errors = sum(by_id_a[k].measurement_outcome == by_id_b[k].measurement_outcome
                     for k in keys)
        # QBER must stay clearly below the 50% of uncorrelated outcomes
        # (typically ~20-35% at this alpha with noisy readout).
        assert errors / len(keys) < 0.45


class TestRejections:
    def test_unattainable_fidelity_rejected_with_unsupp(self):
        network = make_network()
        _, errors = collect(network)
        request = EntanglementRequest(remote_node_id="B", number=1,
                                      min_fidelity=0.97)
        network.node_a.create(request)
        network.run(0.1)
        assert errors["A"][0].error is ErrorCode.UNSUPP

    def test_impossible_deadline_rejected_with_unsupp(self):
        network = make_network()
        _, errors = collect(network)
        request = EntanglementRequest(remote_node_id="B", number=100,
                                      min_fidelity=0.6, max_time=1e-3)
        network.node_a.create(request)
        network.run(0.1)
        assert errors["A"][0].error is ErrorCode.UNSUPP

    def test_atomic_request_larger_than_memory_rejected(self):
        network = make_network()
        _, errors = collect(network)
        request = EntanglementRequest(remote_node_id="B", number=4,
                                      atomic=True, min_fidelity=0.6)
        network.node_a.create(request)
        network.run(0.1)
        assert errors["A"][0].error is ErrorCode.MEMEXCEEDED

    def test_peer_policy_denial(self):
        network = make_network()
        network.node_b.dqp.accept_policy = lambda request: request.purpose_id != 99
        _, errors = collect(network)
        request = EntanglementRequest(remote_node_id="B", number=1,
                                      purpose_id=99, min_fidelity=0.6)
        network.node_a.create(request)
        network.run(0.5)
        assert errors["A"][0].error is ErrorCode.DENIED

    def test_timeout_reported_when_deadline_passes(self):
        network = make_network()
        _, errors = collect(network)
        # Feasible per the FEU estimate but throttled by a tiny deadline that
        # expires before the first pair can realistically be produced.
        request = EntanglementRequest(remote_node_id="B", number=1,
                                      min_fidelity=0.6, max_time=0.012)
        network.node_a.create(request)
        network.run(1.0)
        codes = {err.error for err in errors["A"]}
        assert codes & {ErrorCode.TIMEOUT, ErrorCode.UNSUPP}


class TestRobustnessToClassicalLoss:
    def test_protocol_survives_inflated_frame_loss(self):
        scenario = lab_scenario().with_frame_loss(1e-3)
        network = make_network(scenario, attempt_batch_size=1)
        oks, errors = collect(network)
        request = EntanglementRequest(remote_node_id="B", number=10,
                                      request_type=RequestType.MEASURE,
                                      priority=Priority.MD,
                                      consecutive=True, min_fidelity=0.6)
        network.node_a.create(request)
        network.run(5.0)
        # Entanglement generation keeps making progress despite lost frames.
        assert len(oks["A"]) + len(oks["B"]) > 0

    def test_sequence_recovery_issues_expire_not_deadlock(self):
        scenario = lab_scenario().with_frame_loss(5e-3)
        network = make_network(scenario, attempt_batch_size=1, seed=3)
        oks, errors = collect(network)
        request = EntanglementRequest(remote_node_id="B", number=20,
                                      request_type=RequestType.MEASURE,
                                      priority=Priority.MD,
                                      consecutive=True, min_fidelity=0.6)
        network.node_a.create(request)
        network.run(6.0)
        total_progress = len(oks["A"]) + len(oks["B"])
        assert total_progress > 0
        # EXPIRE-based recovery may or may not trigger, but must never deadlock
        # the protocol: the midpoint keeps processing attempts throughout.
        assert network.midpoint.statistics["attempts"] > 1000
