"""Tests for ``repro.topology``: specs, swap math, chains, stars, caching."""

from __future__ import annotations

import dataclasses
import json
import types

import numpy as np
import pytest

from repro.core.messages import Priority
from repro.hardware.parameters import lab_scenario
from repro.quantum.states import BellIndex, bell_state
from repro.runtime import ScenarioSpec, SweepRunner, WorkloadSpec, chain_grid, star_grid
from repro.runtime.batch import cohortable
from repro.runtime.cache import ResumeCache
from repro.runtime.sweep import ScenarioOutcome
from repro.topology import (
    LinkSpec,
    SwitchSchedule,
    Topology,
    TopologyRun,
    compose_chain,
    jain_fairness,
    outcome_average_swap,
    project_swap,
    swap_states,
    werner_chain_fidelity,
    werner_state,
)

DURATION = 0.5


def chain_spec(num_nodes: int = 3, backend=None) -> ScenarioSpec:
    return chain_grid(lengths=(num_nodes,), loads=("Ultra",),
                      backend=backend)[0]


def fidelity_to_psi_plus(state) -> float:
    ket = bell_state(BellIndex.PSI_PLUS)
    return float(np.real(ket.conj() @ (state.matrix @ ket)))


class TestTopologySpec:
    def test_chain_constructor_shape(self):
        topology = Topology.chain(4)
        assert topology.kind == "chain"
        assert topology.nodes == ("n0", "n1", "n2", "n3")
        assert [link.name for link in topology.links] == [
            "n0-n1", "n1-n2", "n2-n3"]
        assert topology.interior_nodes() == ("n1", "n2")

    def test_star_constructor_shape(self):
        topology = Topology.switched_star(3)
        assert topology.kind == "star"
        assert len(topology.links) == 3
        assert topology.switch is not None

    def test_json_round_trip_exact(self):
        for topology in (Topology.chain(3, hardware="QL2020"),
                         Topology.switched_star(2, insertion_loss_db=2.5)):
            data = json.loads(json.dumps(topology.to_dict()))
            assert Topology.from_dict(data) == topology
            assert Topology.from_dict(data).identity_key() == \
                topology.identity_key()

    def test_identity_key_tracks_definition(self):
        base = Topology.chain(3)
        renamed = dataclasses.replace(base, name="other")
        assert base.identity_key() != renamed.identity_key()
        assert base.identity_key() == Topology.chain(3).identity_key()

    def test_scenario_spec_round_trip_with_topology(self):
        spec = chain_spec()
        data = json.loads(json.dumps(spec.to_dict()))
        assert ScenarioSpec.from_dict(data) == spec

    def test_validation_rejects_broken_chains(self):
        config = lab_scenario()
        link = LinkSpec(node_a="n0", node_b="n1", scenario=config)
        with pytest.raises(ValueError, match="needs 2 links"):
            Topology(name="bad", kind="chain", nodes=("n0", "n1", "n2"),
                     links=(link,)).validate()
        with pytest.raises(ValueError, match="unknown"):
            Topology(name="bad", kind="chain", nodes=("n0", "n1"),
                     links=(LinkSpec(node_a="n0", node_b="nX",
                                     scenario=config),)).validate()
        with pytest.raises(ValueError, match="switch"):
            Topology(name="bad", kind="star", nodes=("a0", "b0"),
                     links=(LinkSpec(node_a="a0", node_b="b0",
                                     scenario=config),)).validate()

    def test_midpoint_position_preserves_total_fibre(self):
        config = lab_scenario()
        link = LinkSpec(node_a="a", node_b="b", scenario=config,
                        midpoint_position=0.3)
        arm = link.arm_scenario()
        total = (config.optics_a.fiber_length_km
                 + config.optics_b.fiber_length_km)
        assert arm.optics_a.fiber_length_km == pytest.approx(0.3 * total)
        assert (arm.optics_a.fiber_length_km
                + arm.optics_b.fiber_length_km) == pytest.approx(total)


class TestSwapMath:
    def test_circuit_matches_projector_for_every_outcome(self):
        rng = np.random.default_rng(3)
        left = werner_state(0.92)
        right = werner_state(0.81)
        seen = set()
        for attempt in range(200):
            outcome, state = swap_states(left.copy(), right.copy(),
                                         np.random.default_rng(attempt))
            _, projected = project_swap(left, right, outcome)
            np.testing.assert_allclose(state.matrix, projected.matrix,
                                       atol=1e-12)
            seen.add(outcome)
            if len(seen) == 4:
                break
        assert len(seen) == 4

    def test_outcome_average_is_associative(self):
        a = werner_state(0.95)
        b = werner_state(0.85)
        c = werner_state(0.75)
        # A non-Werner participant: rotate one qubit a little.
        theta = 0.3
        rotation = np.array([[np.cos(theta), -np.sin(theta)],
                             [np.sin(theta), np.cos(theta)]], dtype=complex)
        b.apply_unitary(rotation, qubits=[1])
        left_first = outcome_average_swap(outcome_average_swap(a, b), c)
        right_first = outcome_average_swap(a, outcome_average_swap(b, c))
        np.testing.assert_allclose(left_first.matrix, right_first.matrix,
                                   atol=1e-12)

    def test_werner_chain_closed_form(self):
        fidelities = [0.93, 0.82, 0.88]
        composed = compose_chain([werner_state(f) for f in fidelities])
        assert fidelity_to_psi_plus(composed) == pytest.approx(
            werner_chain_fidelity(fidelities), abs=1e-12)

    def test_perfect_links_swap_perfectly(self):
        perfect = werner_state(1.0)
        for outcome in ((0, 0), (0, 1), (1, 0), (1, 1)):
            probability, state = project_swap(perfect, perfect, outcome)
            assert probability == pytest.approx(0.25, abs=1e-12)
            assert fidelity_to_psi_plus(state) == pytest.approx(1.0,
                                                                abs=1e-12)


class TestChainEndToEnd:
    @pytest.mark.parametrize("backend", ["density", "analytic"])
    def test_three_node_chain_matches_analytic_composition(self, backend):
        spec = chain_spec(3, backend=backend)
        run = TopologyRun(spec.topology, spec.workload, seed=11,
                          backend=backend)
        run.start()
        elapsed = 0.0
        while not run.network.swap.end_to_end and elapsed < 4.0:
            elapsed += DURATION
            run.advance_to(elapsed)
        records = run.network.swap.end_to_end
        assert records, "chain delivered no end-to-end pairs"
        for record in records:
            assert record.swaps == 1 and len(record.swap_events) == 1
            event = record.swap_events[0]
            # The protocol's circuit-path swap must equal an independent
            # analytic composition (Bell projection) of the two per-link
            # states it consumed.
            _, composed = project_swap(event.left_state, event.right_state,
                                       event.outcome)
            np.testing.assert_allclose(record.state.matrix, composed.matrix,
                                       atol=1e-9)
            assert record.fidelity == pytest.approx(
                fidelity_to_psi_plus(composed), abs=1e-9)

    @pytest.mark.parametrize("backend", ["density", "analytic"])
    def test_longer_chain_composes_all_swaps(self, backend):
        spec = chain_spec(4, backend=backend)
        run = TopologyRun(spec.topology, spec.workload, seed=13,
                          backend=backend)
        run.start()
        elapsed = 0.0
        while not run.network.swap.end_to_end and elapsed < 6.0:
            elapsed += DURATION
            run.advance_to(elapsed)
        records = run.network.swap.end_to_end
        assert records, "chain delivered no end-to-end pairs"
        record = records[0]
        assert record.swaps == 2
        for event in record.swap_events:
            _, composed = project_swap(event.left_state, event.right_state,
                                       event.outcome)
            np.testing.assert_allclose(event.output_state.matrix,
                                       composed.matrix, atol=1e-9)

    def test_run_result_carries_topology_fields(self):
        spec = chain_spec(3, backend="analytic")
        result = spec.run(1.0, seed=7)
        assert result.topology == spec.topology.name
        assert result.end_to_end["links"] == 2
        assert [hop["link"] for hop in result.hops] == ["n0-n1", "n1-n2"]
        assert "E2E" in result.summary.pairs_delivered

    def test_chain_rejects_measure_directly_workloads(self):
        spec = chain_spec(3)
        workload = (WorkloadSpec(priority=Priority.MD, load_fraction=0.9),)
        with pytest.raises(ValueError, match="create-and-keep"):
            TopologyRun(spec.topology, workload)

    def test_chain_runs_are_seed_deterministic(self):
        spec = chain_spec(3, backend="analytic")
        first = spec.run(1.0, seed=21)
        second = spec.run(1.0, seed=21)
        assert first.end_to_end == second.end_to_end
        assert first.hops == second.hops
        assert first.events_processed == second.events_processed


class TestSwitchedStar:
    def test_round_robin_schedule(self):
        schedule = SwitchSchedule(num_links=3, slot_duration=0.01)
        assert schedule.active_link(0.000) == 0
        assert schedule.active_link(0.015) == 1
        assert schedule.active_link(0.025) == 2
        assert schedule.active_link(0.031) == 0
        gate = schedule.gate(1)
        # Link 0's slot: inactive — the magnitude counts the attempts until
        # link 1's slot opens at t=0.01 (90 attempts of 1e-4 s from 0.001).
        assert gate(0.001, 10, 1, 1e-4) == -90
        assert gate(0.011, 10, 1, 1e-4) > 0
        assert schedule.next_active(1, 0.001) == pytest.approx(0.01)
        assert schedule.next_active(1, 0.011) == pytest.approx(0.011)
        assert schedule.next_active(1, 0.021) == pytest.approx(0.04)

    def test_star_shares_midpoint_fairly(self):
        spec = star_grid(sizes=(2,), loads=("Ultra",))[0]
        result = spec.run(2.0, seed=9)
        e2e = result.end_to_end
        assert e2e["pairs"] > 0
        assert e2e["fairness"] > 0.8
        assert len(result.hops) == 2

    def test_jain_fairness_index(self):
        assert jain_fairness([]) == 1.0
        assert jain_fairness([0, 0]) == 1.0
        assert jain_fairness([5, 5, 5]) == pytest.approx(1.0)
        assert jain_fairness([1, 0]) == pytest.approx(0.5)

    def test_insertion_loss_reduces_throughput(self):
        lossless = star_grid(sizes=(2,), loads=("Ultra",),
                             insertion_loss_db=0.0)[0]
        lossy = star_grid(sizes=(2,), loads=("Ultra",),
                          insertion_loss_db=10.0)[0]
        pairs_lossless = lossless.run(2.0, seed=9).end_to_end["pairs"]
        pairs_lossy = lossy.run(2.0, seed=9).end_to_end["pairs"]
        assert pairs_lossy < pairs_lossless


class TestSweepIntegration:
    def test_cohortable_rejects_topology_scenarios(self):
        spec = chain_spec(3, backend="analytic")
        assert not cohortable(spec)
        single = ScenarioSpec(
            name="solo", scenario=lab_scenario(),
            workload=(WorkloadSpec(priority=Priority.MD, load_fraction=0.9),),
            backend="analytic")
        assert cohortable(single)

    def test_chain_sweep_serial_equals_sharded(self, tmp_path):
        from repro.cluster import ClusterCoordinator

        specs = chain_grid(lengths=(3,), loads=("Ultra",),
                           backend="analytic")
        serial = SweepRunner(specs, 0.4, master_seed=5).run()
        coordinator = ClusterCoordinator(specs, 0.4,
                                         tmp_path / "cluster",
                                         master_seed=5, num_shards=2)
        sharded = coordinator.run_local()
        # Dataclass equality covers every result field (summary, hops,
        # end_to_end, events) but not wall-clock/cache provenance.
        assert serial.outcomes == sharded.outcomes
        assert serial.outcomes[0].end_to_end is not None
        assert serial.outcomes[0].end_to_end == \
            sharded.outcomes[0].end_to_end

    def test_outcome_round_trips_topology_fields(self):
        spec = chain_spec(3, backend="analytic")
        result = SweepRunner([spec], 0.4, master_seed=5).run()
        outcome = result.outcomes[0]
        assert outcome.topology == spec.topology.name
        rebuilt = ScenarioOutcome.from_dict(
            json.loads(json.dumps(outcome.to_dict())))
        assert rebuilt == outcome
        assert rebuilt.hops == outcome.hops
        assert rebuilt.end_to_end == outcome.end_to_end


class TestResumeCacheTopology:
    def _outcome(self, spec: ScenarioSpec, seed: int) -> ScenarioOutcome:
        return ScenarioOutcome(scenario_name=spec.name, scheduler_name="FCFS",
                               seed=seed, duration=DURATION,
                               backend=spec.backend_name(),
                               engine=spec.engine_name())

    def test_topology_mismatch_is_reported_not_missed(self, tmp_path):
        cache = ResumeCache(tmp_path)
        spec = chain_spec(3, backend="analytic")
        cache.store(spec, self._outcome(spec, 1), DURATION)
        # Same scenario name, same per-link hardware and workload — but the
        # topology was redefined underneath it.  The identity hash excludes
        # the topology, so the entry is *found* and skipped with a reason.
        redefined = dataclasses.replace(
            spec, topology=dataclasses.replace(
                spec.topology, name=spec.topology.name,
                links=tuple(dataclasses.replace(link, midpoint_position=0.4)
                            for link in spec.topology.links)))
        assert cache.key(redefined, 1, DURATION) == cache.key(spec, 1,
                                                              DURATION)
        outcome, reason = cache.load(redefined, 1, DURATION)
        assert outcome is None
        assert "topology" in reason and spec.topology.name in reason

    def test_single_link_entry_reported_against_topology_spec(self, tmp_path):
        cache = ResumeCache(tmp_path)
        spec = chain_spec(3, backend="analytic")
        single = dataclasses.replace(spec, topology=None)
        cache.store(single, self._outcome(single, 1), DURATION)
        outcome, reason = cache.load(spec, 1, DURATION)
        assert outcome is None
        assert "single-link" in reason

    def test_matching_topology_hits(self, tmp_path):
        cache = ResumeCache(tmp_path)
        spec = chain_spec(3, backend="analytic")
        cache.store(spec, self._outcome(spec, 1), DURATION)
        outcome, reason = cache.load(spec, 1, DURATION)
        assert reason is None
        assert outcome is not None and outcome.from_cache


class TestAutoBatchSize:
    def _plan(self, specs, cache_dir):
        return types.SimpleNamespace(specs=specs, cache_dir=str(cache_dir))

    def test_derives_from_recorded_cohort_speedup(self, tmp_path):
        from repro.cluster.planner import RecordedCostModel
        from repro.cluster.worker import derive_batch_size
        from repro.runtime.cache import cost_model_path

        spec = ScenarioSpec(
            name="solo", scenario=lab_scenario(),
            workload=(WorkloadSpec(priority=Priority.MD, load_fraction=0.9),),
            backend="analytic")
        model = RecordedCostModel()
        model._rates[("solo", "analytic")] = [1.2]
        model._rates[("solo", "analytic#cohort")] = [0.3]  # 4x speedup
        model.save(cost_model_path(tmp_path))
        assert derive_batch_size(self._plan([spec], tmp_path)) == 4

    def test_defaults_to_solo_without_history(self, tmp_path):
        from repro.cluster.worker import derive_batch_size

        spec = ScenarioSpec(
            name="solo", scenario=lab_scenario(),
            workload=(WorkloadSpec(priority=Priority.MD, load_fraction=0.9),),
            backend="analytic")
        assert derive_batch_size(self._plan([spec], tmp_path)) == 1
        assert derive_batch_size(
            types.SimpleNamespace(specs=[spec], cache_dir=None)) == 1

    def test_speedup_is_clamped(self, tmp_path):
        from repro.cluster.planner import RecordedCostModel
        from repro.cluster.worker import MAX_AUTO_BATCH_SIZE, derive_batch_size
        from repro.runtime.cache import cost_model_path

        spec = ScenarioSpec(
            name="solo", scenario=lab_scenario(),
            workload=(WorkloadSpec(priority=Priority.MD, load_fraction=0.9),),
            backend="analytic")
        model = RecordedCostModel()
        model._rates[("solo", "analytic")] = [100.0]
        model._rates[("solo", "analytic#cohort")] = [1.0]
        model.save(cost_model_path(tmp_path))
        assert derive_batch_size(
            self._plan([spec], tmp_path)) == MAX_AUTO_BATCH_SIZE


class TestCostModelLinks:
    def test_static_cost_scales_with_links(self):
        from repro.cluster.planner import StaticCostModel

        model = StaticCostModel()
        chain5 = chain_spec(5)
        chain3 = chain_spec(3)
        assert model.estimate(chain5, 1.0) > model.estimate(chain3, 1.0)
        assert chain5.cost_features()["links"] == 4

    def test_no_cohort_discount_for_topologies(self):
        from repro.cluster.planner import StaticCostModel

        model = StaticCostModel()
        spec = chain_spec(3, backend="analytic")
        assert model.cohort_estimate(spec, 1.0, 8) == model.estimate(spec,
                                                                     1.0)
