"""Tests for ``repro.obs`` — tracing, metrics, profiling, telemetry.

The load-bearing guarantees:

* **Outcome preservation** — attaching observability changes *nothing*
  about a run's results: summary, event counts and the engine's
  ``(time, name)`` trace are bit-identical with observability on or off.
* **Trace determinism** — the structured trace of a ``(spec, seed)``
  pair is identical across event engines (heap/calendar/ladder) and
  byte-identical across solo vs cohort execution.
* **Telemetry** — cluster workers ship their metrics registry through
  the idempotent ``telemetry`` transport op and the coordinator merges
  the per-worker snapshots into ``SweepResult.telemetry``.
"""

from __future__ import annotations

import json
import logging

import pytest

from repro.cluster import ClusterCoordinator, ClusterWorker, FilesystemTransport
from repro.cluster.coordinator import TELEMETRY_DIR
from repro.cluster.transport import IDEMPOTENT_OPS
from repro.obs import (
    DEFAULT_OBS_DIR,
    MetricsRegistry,
    NULL_TRACER,
    ObsConfig,
    ObsSession,
    Tracer,
    config_from_env,
    obs_features,
    session_from_env,
)
from repro.obs.logconf import configure_logging
from repro.obs.report import main as report_main
from repro.obs.trace import read_jsonl
from repro.runtime import ScenarioSpec, single_kind_scenarios
from repro.runtime.batch import execute_cohort
from repro.runtime.runner import SimulationRun
from repro.runtime.sweep import ScenarioOutcome, SweepRunner, execute_scenario

# Long enough for the High-load Lab workloads to issue requests and
# deliver pairs (0.05s would trace an empty run); still < 0.1s wall each.
DURATION = 0.2

ENGINES = ("heap", "calendar", "ladder")


def grid(count=None, backend="analytic") -> list[ScenarioSpec]:
    specs = single_kind_scenarios(
        "Lab", kinds=("CK", "MD"), loads=("High",), max_pairs_options=(1,),
        origins=("A",), include_md_k255=False, attempt_batch_size=40,
        backend=backend)
    return specs if count is None else specs[:count]


def traced_run(spec: ScenarioSpec, seed: int = 7,
               engine: str | None = None,
               config: ObsConfig | None = None):
    """Run ``spec`` with an explicit ObsSession; returns (result, session)."""
    session = ObsSession(config if config is not None
                         else ObsConfig(trace=True))
    run = SimulationRun(spec.scenario, spec.workload,
                        scheduler=spec.scheduler, seed=seed,
                        attempt_batch_size=spec.attempt_batch_size,
                        backend=spec.backend, engine=engine or spec.engine,
                        obs=session)
    return run.run(DURATION), session


# --------------------------------------------------------------------------- #
# Config / env plumbing
# --------------------------------------------------------------------------- #
class TestObsConfig:
    def test_features_parse(self):
        assert obs_features("trace,metrics") == {"trace", "metrics"}
        assert obs_features(" TRACE , profile ") == {"trace", "profile"}
        assert obs_features("all") == {"trace", "metrics", "profile"}
        assert obs_features("bogus,trace") == {"trace"}
        assert obs_features("") == frozenset()

    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS", raising=False)
        assert config_from_env() is None
        assert session_from_env() is None

    def test_env_config(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_OBS", "trace,metrics")
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path / "out"))
        config = config_from_env()
        assert config.trace and config.metrics and not config.profile
        assert config.out_dir == tmp_path / "out"
        monkeypatch.delenv("REPRO_OBS_DIR")
        assert str(config_from_env().out_dir) == DEFAULT_OBS_DIR

    def test_run_without_obs_has_no_tracer(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS", raising=False)
        spec = grid(1)[0]
        run = SimulationRun(spec.scenario, spec.workload, seed=3,
                            backend=spec.backend,
                            attempt_batch_size=spec.attempt_batch_size)
        assert run.obs is None
        assert run.network.engine.tracer is None
        result = run.run(DURATION)
        assert result.obs is None


# --------------------------------------------------------------------------- #
# Outcome preservation
# --------------------------------------------------------------------------- #
class TestOutcomePreservation:
    def test_observability_does_not_change_results(self):
        spec = grid(1)[0]
        plain = SimulationRun(spec.scenario, spec.workload, seed=11,
                              backend=spec.backend,
                              attempt_batch_size=spec.attempt_batch_size,
                              obs=None).run(DURATION)
        traced, session = traced_run(
            spec, seed=11, config=ObsConfig(trace=True, metrics=True))
        assert traced.summary == plain.summary
        assert traced.events_processed == plain.events_processed
        assert traced.events_elided == plain.events_elided
        assert traced.requests_issued == plain.requests_issued
        # And the trace actually saw the run.
        assert sum(session.tracer.executed.values()) == plain.events_processed
        assert session.tracer.records

    def test_null_tracer_is_inert(self):
        NULL_TRACER.event(0.0, "x", a=1)
        NULL_TRACER.span(0.0, 1.0, "x")
        NULL_TRACER.counter("x")
        NULL_TRACER.on_scheduled("x")
        NULL_TRACER.on_executed("x")
        NULL_TRACER.on_cancelled("x")
        NULL_TRACER.on_elided("x")
        assert NULL_TRACER.records == []
        assert NULL_TRACER.counters == {}


# --------------------------------------------------------------------------- #
# Trace determinism
# --------------------------------------------------------------------------- #
class TestTraceDeterminism:
    def test_identical_across_event_engines(self):
        spec = grid(1)[0]
        traces = []
        for engine in ENGINES:
            _, session = traced_run(spec, seed=21, engine=engine)
            traces.append(session.tracer.to_dict())
        assert traces[0]["records"], "trace captured no protocol events"
        assert traces[0] == traces[1] == traces[2]

    def test_identical_across_repeat_runs(self):
        spec = grid(2)[1]
        _, first = traced_run(spec, seed=5)
        _, second = traced_run(spec, seed=5)
        assert first.tracer.to_dict() == second.tracer.to_dict()

    def test_solo_vs_cohort_traces_byte_identical(self, monkeypatch, tmp_path):
        specs = grid(2)
        seeds = [31, 32]
        solo_dir = tmp_path / "solo"
        cohort_dir = tmp_path / "cohort"
        monkeypatch.setenv("REPRO_OBS", "trace")

        monkeypatch.setenv("REPRO_OBS_DIR", str(solo_dir))
        for spec, seed in zip(specs, seeds):
            execute_scenario(spec, seed, DURATION)

        monkeypatch.setenv("REPRO_OBS_DIR", str(cohort_dir))
        payloads = [(i, spec, seed, DURATION)
                    for i, (spec, seed) in enumerate(zip(specs, seeds))]
        outcomes = execute_cohort(payloads)
        assert all(outcome.ok for _, outcome in outcomes)

        for spec, seed in zip(specs, seeds):
            name = f"{spec.name}-seed{seed}"
            solo = (solo_dir / name / "trace.jsonl").read_bytes()
            cohort = (cohort_dir / name / "trace.jsonl").read_bytes()
            assert solo == cohort
            records, summary = read_jsonl(solo_dir / name / "trace.jsonl")
            assert summary is not None and records


# --------------------------------------------------------------------------- #
# events_elided provenance
# --------------------------------------------------------------------------- #
class TestEventsElided:
    def test_elision_is_counted(self):
        spec = grid(1)[0]
        outcome = execute_scenario(spec, 11, DURATION)
        assert outcome.ok
        # Lab scenarios elide reply watchdogs (lossless classical channel)
        # and busy polls, so a non-trivial run must report elisions.
        assert outcome.events_elided > 0
        assert outcome.events_processed > 0

    def test_round_trips_through_serialization(self):
        spec = grid(1)[0]
        outcome = execute_scenario(spec, 11, DURATION)
        rebuilt = ScenarioOutcome.from_dict(
            json.loads(json.dumps(outcome.to_dict())))
        assert rebuilt.events_elided == outcome.events_elided
        assert rebuilt == outcome

    def test_tracer_sees_per_kind_elision(self):
        spec = grid(1)[0]
        result, session = traced_run(spec, seed=11)
        assert sum(session.tracer.elided.values()) == result.events_elided


# --------------------------------------------------------------------------- #
# Metrics registry
# --------------------------------------------------------------------------- #
class TestMetricsRegistry:
    def test_counter_gauge_histogram_roundtrip(self):
        registry = MetricsRegistry(base_labels={"worker": "w1"})
        registry.counter("jobs_total", 3, status="ok")
        registry.counter("jobs_total", status="ok")
        registry.gauge("depth", 7.0)
        registry.observe("latency_seconds", 0.02)
        registry.observe("latency_seconds", 4.0)
        rebuilt = MetricsRegistry.from_dict(registry.to_dict())
        assert rebuilt.to_dict() == registry.to_dict()
        assert rebuilt.counter_value("jobs_total",
                                     worker="w1", status="ok") == 4
        assert rebuilt.gauge_value("depth", worker="w1") == 7.0

    def test_merge_sums_counters_and_histograms(self):
        a = MetricsRegistry(base_labels={"worker": "a"})
        b = MetricsRegistry(base_labels={"worker": "b"})
        a.counter("jobs_total", 2)
        b.counter("jobs_total", 5)
        a.observe("latency_seconds", 0.01)
        b.observe("latency_seconds", 0.5)
        merged = MetricsRegistry().merge(a).merge(b.to_dict())
        assert merged.counter_value("jobs_total", worker="a") == 2
        assert merged.counter_value("jobs_total", worker="b") == 5
        # Merging the same snapshot twice must double-count (counters sum):
        # idempotence lives at the transport layer (whole-file replacement),
        # not in merge itself.
        doubled = MetricsRegistry().merge(a).merge(a)
        assert doubled.counter_value("jobs_total", worker="a") == 4

    def test_prometheus_exposition(self):
        registry = MetricsRegistry()
        registry.counter("repro_jobs_total", 2, status="ok")
        registry.gauge("repro_depth", 1.5)
        registry.observe("repro_wall_seconds", 0.3)
        text = registry.to_prometheus()
        assert '# TYPE repro_jobs_total counter' in text
        assert 'repro_jobs_total{status="ok"} 2' in text
        assert '# TYPE repro_wall_seconds histogram' in text
        assert 'repro_wall_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_wall_seconds_count 1" in text


# --------------------------------------------------------------------------- #
# Sweep-level metrics
# --------------------------------------------------------------------------- #
class TestSweepMetrics:
    def test_sweep_telemetry_attached_and_written(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_OBS", "metrics")
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        specs = grid(2)
        result = SweepRunner(specs, DURATION, master_seed=77).run()
        assert result.telemetry is not None
        registry = MetricsRegistry.from_dict(result.telemetry)
        assert registry.counter_value("repro_sweep_scenarios_total",
                                      status="ok") == len(specs)
        assert (tmp_path / "sweep_metrics.json").exists()
        assert (tmp_path / "sweep_metrics.prom").exists()
        # The serialized sweep keeps the telemetry section.
        rebuilt = type(result).from_dict(result.to_dict())
        assert rebuilt.telemetry == result.telemetry

    def test_sweep_without_obs_has_no_telemetry(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS", raising=False)
        result = SweepRunner(grid(1), DURATION, master_seed=77).run()
        assert result.telemetry is None
        assert "telemetry" not in result.to_dict()


# --------------------------------------------------------------------------- #
# Cluster telemetry op
# --------------------------------------------------------------------------- #
class TestClusterTelemetry:
    def test_telemetry_is_idempotent_op(self):
        assert "telemetry" in IDEMPOTENT_OPS

    def test_filesystem_transport_writes_snapshot(self, tmp_path):
        specs = grid(2)
        coordinator = ClusterCoordinator(specs, DURATION, tmp_path,
                                         master_seed=77, num_shards=1)
        coordinator.write_plan()
        transport = FilesystemTransport(tmp_path)
        transport.send_telemetry("w1", {"format": "repro-metrics/v1",
                                        "counters": []})
        transport.send_telemetry("w1", {"format": "repro-metrics/v1",
                                        "counters": []})  # idempotent rewrite
        path = tmp_path / TELEMETRY_DIR / "w1.json"
        assert json.loads(path.read_text())["format"] == "repro-metrics/v1"
        transport.close()

    def test_worker_ships_and_coordinator_merges(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_OBS", "metrics")
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path / "obs"))
        specs = grid(2)
        cluster_dir = tmp_path / "cluster"
        coordinator = ClusterCoordinator(specs, DURATION, cluster_dir,
                                         master_seed=77, num_shards=2)
        coordinator.write_plan()
        workers = [ClusterWorker(cluster_dir, worker_id=f"w{i}", shard=i)
                   for i in range(2)]
        for worker in workers:
            while worker.step() is not None:
                pass
            worker.close()
        result = coordinator.merge()
        assert result.telemetry is not None
        merged = MetricsRegistry.from_dict(result.telemetry)
        total = sum(
            merged.counter_value("repro_worker_claims_total",
                                 worker=f"w{i}", shard=str(i)) or 0
            for i in range(2))
        assert total == len(specs)
        assert (cluster_dir / "metrics.json").exists()
        assert (cluster_dir / "metrics.prom").exists()
        # Per-worker snapshots landed through the transport op.
        assert sorted(path.name for path
                      in (cluster_dir / TELEMETRY_DIR).glob("*.json")) \
            == ["w0.json", "w1.json"]

    def test_merge_without_telemetry_stays_none(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_OBS", raising=False)
        specs = grid(2)
        cluster_dir = tmp_path / "cluster"
        coordinator = ClusterCoordinator(specs, DURATION, cluster_dir,
                                         master_seed=77, num_shards=1)
        coordinator.write_plan()
        worker = ClusterWorker(cluster_dir, worker_id="w0", shard=0)
        assert worker.metrics is None
        while worker.step() is not None:
            pass
        worker.close()
        result = coordinator.merge()
        assert result.telemetry is None

    def test_serve_dispatch_handles_telemetry_frame(self, tmp_path):
        from repro.cluster.serve import ClusterCoordinatorServer

        specs = grid(1)
        coordinator = ClusterCoordinator(specs, DURATION, tmp_path / "c",
                                         master_seed=77, num_shards=1)
        server = ClusterCoordinatorServer(coordinator)
        server.start_background()
        try:
            payload = MetricsRegistry(base_labels={"worker": "w9"})
            payload.counter("repro_worker_claims_total")
            response = server.dispatch({"op": "telemetry", "worker_id": "w9",
                                        "metrics": payload.to_dict()})
            assert response["ok"]
            written = tmp_path / "c" / TELEMETRY_DIR / "w9.json"
            assert json.loads(written.read_text())["format"] \
                == "repro-metrics/v1"
            bad = server.dispatch({"op": "telemetry", "worker_id": "w9",
                                   "metrics": "not-a-dict"})
            assert not bad["ok"]
        finally:
            server.stop()


# --------------------------------------------------------------------------- #
# Report CLI and logging
# --------------------------------------------------------------------------- #
class TestReportAndLogging:
    def test_report_renders_obs_dir(self, monkeypatch, tmp_path, capsys):
        monkeypatch.setenv("REPRO_OBS", "trace,metrics")
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        spec = grid(1)[0]
        execute_scenario(spec, 51, DURATION)
        assert report_main([str(tmp_path)]) == 0
        rendered = capsys.readouterr().out
        assert "trace" in rendered

    def test_report_rejects_empty_path(self, tmp_path, capsys):
        assert report_main([str(tmp_path / "missing")]) == 1

    def test_configure_logging_is_idempotent(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG", raising=False)
        root = logging.getLogger("repro")
        state = (list(root.handlers), root.level, root.propagate)
        try:
            configure_logging()
            configure_logging(verbose=True)
            tagged = [handler for handler in root.handlers
                      if getattr(handler, "_repro_obs_handler", False)]
            assert len(tagged) == 1
            assert root.level == logging.DEBUG
            configure_logging()
            assert root.level == logging.INFO
        finally:
            root.handlers[:], root.level, root.propagate = state
            root.setLevel(state[1])
