"""Unit tests for quantum states, gates and the density-matrix substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.quantum import gates
from repro.quantum.density import DensityMatrix
from repro.quantum.states import (
    BellIndex,
    basis_states,
    bell_state,
    ket0,
    ket1,
    ket_minus,
    ket_plus,
    ket_to_dm,
)


class TestStates:
    def test_basis_states_are_normalised(self):
        for ket in (ket0(), ket1(), ket_plus(), ket_minus()):
            assert np.isclose(np.linalg.norm(ket), 1.0)

    def test_plus_minus_orthogonal(self):
        assert np.isclose(np.vdot(ket_plus(), ket_minus()), 0.0)

    def test_bell_states_are_orthonormal(self):
        kets = [bell_state(i) for i in BellIndex]
        for i, ket_i in enumerate(kets):
            for j, ket_j in enumerate(kets):
                expected = 1.0 if i == j else 0.0
                assert np.isclose(abs(np.vdot(ket_i, ket_j)), expected)

    def test_bell_transformations(self):
        # Eq. (13): |Psi+> = X_A |Phi+>, |Psi-> = Z_A X_A |Phi+>.
        phi_plus = bell_state(BellIndex.PHI_PLUS)
        x_a = np.kron(gates.X, gates.I)
        z_a = np.kron(gates.Z, gates.I)
        assert np.allclose(x_a @ phi_plus, bell_state(BellIndex.PSI_PLUS))
        assert np.allclose(z_a @ x_a @ phi_plus, bell_state(BellIndex.PSI_MINUS))

    def test_unknown_basis_raises(self):
        with pytest.raises(ValueError):
            basis_states("W")

    def test_ket_to_dm_is_projector(self):
        dm = ket_to_dm(ket_plus())
        assert np.allclose(dm, dm @ dm)
        assert np.isclose(np.trace(dm).real, 1.0)


class TestGates:
    @pytest.mark.parametrize("gate", [gates.X, gates.Y, gates.Z, gates.H,
                                      gates.S, gates.CNOT, gates.CZ,
                                      gates.SWAP, gates.EC_CONTROLLED_SQRT_X])
    def test_gates_are_unitary(self, gate):
        assert gates.is_unitary(gate)

    def test_rotations_are_unitary(self):
        for theta in (0.1, np.pi / 2, np.pi, 2.2):
            assert gates.is_unitary(gates.rx(theta))
            assert gates.is_unitary(gates.ry(theta))
            assert gates.is_unitary(gates.rz(theta))

    def test_pauli_algebra(self):
        assert np.allclose(gates.X @ gates.X, gates.I)
        assert np.allclose(gates.X @ gates.Y, 1j * gates.Z)

    def test_hadamard_maps_z_to_x(self):
        assert np.allclose(gates.H @ ket0(), ket_plus())
        assert np.allclose(gates.H @ ket1(), ket_minus())

    def test_controlled_rx_blocks(self):
        gate = gates.controlled_rx(np.pi / 3)
        assert np.allclose(gate[:2, :2], gates.rx(np.pi / 3))
        assert np.allclose(gate[2:, 2:], gates.rx(-np.pi / 3))

    def test_expand_single_qubit(self):
        expanded = gates.expand_single_qubit(gates.X, target=1, num_qubits=2)
        assert np.allclose(expanded, np.kron(gates.I, gates.X))

    def test_expand_two_qubit_adjacent_matches_kron(self):
        expanded = gates.expand_two_qubit(gates.CNOT, control=0, target=1,
                                          num_qubits=2)
        assert np.allclose(expanded, gates.CNOT)

    def test_expand_two_qubit_reversed_control(self):
        # CNOT with control=1, target=0 flips qubit 0 when qubit 1 is set.
        expanded = gates.expand_two_qubit(gates.CNOT, control=1, target=0,
                                          num_qubits=2)
        state = np.zeros(4, dtype=complex)
        state[0b01] = 1.0  # qubit1 = 1
        result = expanded @ state
        expected = np.zeros(4, dtype=complex)
        expected[0b11] = 1.0
        assert np.allclose(result, expected)

    def test_expand_two_qubit_is_unitary_in_larger_register(self):
        expanded = gates.expand_two_qubit(gates.CNOT, control=2, target=0,
                                          num_qubits=3)
        assert gates.is_unitary(expanded)

    def test_expand_rejects_bad_targets(self):
        with pytest.raises(ValueError):
            gates.expand_single_qubit(gates.X, target=3, num_qubits=2)
        with pytest.raises(ValueError):
            gates.expand_two_qubit(gates.CNOT, control=0, target=0,
                                   num_qubits=2)


class TestDensityMatrix:
    def test_from_ket_is_pure(self):
        dm = DensityMatrix.from_ket(bell_state(BellIndex.PSI_PLUS))
        assert dm.num_qubits == 2
        assert dm.purity() == pytest.approx(1.0)

    def test_computational_basis_constructor(self):
        dm = DensityMatrix.computational_basis([1, 0])
        assert dm.matrix[0b10, 0b10] == pytest.approx(1.0)

    def test_maximally_mixed(self):
        dm = DensityMatrix.maximally_mixed(2)
        assert dm.purity() == pytest.approx(0.25)

    def test_validation_rejects_non_hermitian(self):
        bad = np.array([[1.0, 1.0], [0.0, 0.0]], dtype=complex)
        with pytest.raises(ValueError):
            DensityMatrix(bad)

    def test_validation_rejects_wrong_trace(self):
        bad = np.eye(2, dtype=complex)
        with pytest.raises(ValueError):
            DensityMatrix(bad)

    def test_tensor_dimensions(self):
        one = DensityMatrix.from_ket(ket0())
        two = one.tensor(one)
        assert two.num_qubits == 2
        assert two.matrix[0, 0] == pytest.approx(1.0)

    def test_partial_trace_of_bell_state_is_mixed(self):
        dm = DensityMatrix.from_ket(bell_state(BellIndex.PSI_MINUS))
        reduced = dm.partial_trace([0])
        assert reduced.num_qubits == 1
        assert reduced.purity() == pytest.approx(0.5)

    def test_partial_trace_of_product_state(self):
        dm = DensityMatrix.from_ket(ket0()).tensor(
            DensityMatrix.from_ket(ket_plus()))
        reduced = dm.partial_trace([1])
        assert reduced.fidelity_to_pure(ket_plus()) == pytest.approx(1.0)

    def test_apply_unitary_on_subsystem(self):
        dm = DensityMatrix.from_ket(ket0()).tensor(DensityMatrix.from_ket(ket0()))
        dm.apply_unitary(gates.X, qubits=[1])
        assert dm.matrix[0b01, 0b01] == pytest.approx(1.0)

    def test_apply_unitary_wrong_shape_raises(self):
        dm = DensityMatrix.from_ket(ket0())
        with pytest.raises(ValueError):
            dm.apply_unitary(gates.CNOT)

    def test_measure_z_definite_state(self, rng):
        dm = DensityMatrix.from_ket(ket1())
        assert dm.measure(0, basis="Z", rng=rng) == 1

    def test_measure_x_plus_state(self, rng):
        dm = DensityMatrix.from_ket(ket_plus())
        assert dm.measure(0, basis="X", rng=rng) == 0

    def test_measurement_collapses_state(self, rng):
        dm = DensityMatrix.from_ket(bell_state(BellIndex.PHI_PLUS))
        outcome = dm.measure(0, basis="Z", rng=rng)
        # After measuring qubit 0, qubit 1 must give the same Z outcome.
        assert dm.measure(1, basis="Z", rng=rng) == outcome

    def test_bell_state_correlations_psi_minus(self, rng):
        # |Psi-> is anti-correlated in every basis.
        for basis in ("X", "Y", "Z"):
            dm = DensityMatrix.from_ket(bell_state(BellIndex.PSI_MINUS))
            a = dm.measure(0, basis=basis, rng=rng)
            b = dm.measure(1, basis=basis, rng=rng)
            assert a != b

    def test_fidelity_to_pure(self):
        dm = DensityMatrix.from_ket(bell_state(BellIndex.PSI_PLUS))
        assert dm.fidelity_to_pure(bell_state(BellIndex.PSI_PLUS)) == pytest.approx(1.0)
        assert dm.fidelity_to_pure(bell_state(BellIndex.PSI_MINUS)) == pytest.approx(0.0)

    def test_equality(self):
        one = DensityMatrix.from_ket(ket0())
        other = DensityMatrix.from_ket(ket0())
        assert one == other
