"""Tests for the protocol-hardening PR: ``repro.cluster.faults``, idempotent
operations, skew-safe leases, heartbeat-loss abort and torn-write fixes.

The regression tests here are written to fail on the pre-PR code:

* ``test_concurrent_threads_never_tear_atomic_writes`` — per-pid tmp names
  collide across threads of one process (the TCP coordinator's handler
  threads), so one thread's rename deletes the other's tmp file mid-write.
* ``test_duplicate_submit_writes_one_sink_record`` — re-delivered submits
  used to append a second sink record.
* ``test_reclaim_by_owner_is_idempotent`` — a retried claim whose first
  delivery was applied used to be refused, stranding the owner.
* ``test_clock_skew_does_not_fake_a_stale_lease`` — a reader clock running
  2s ahead of the lease writer used to inflate lease ages and falsely take
  over a *healthy* worker's lease.
* ``test_displaced_worker_aborts_instead_of_double_submitting`` — a worker
  whose heartbeat reported the lease lost used to submit its result anyway.
* ``test_connect_deadline_is_clamped`` — the connect retry loop used to
  sleep a fixed 0.2s past the deadline and buy an extra attempt.

The acceptance test runs a seeded fault-injection sweep — drops, resets,
duplicates, stale replays, delays, one mid-scenario worker crash and 2s of
simulated clock skew — over **both** transports and requires the merged
result to be field-for-field identical to a serial ``SweepRunner`` run.
"""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

from repro.cluster import (
    ClusterCoordinator,
    ClusterWorker,
    FaultSchedule,
    FaultyTransport,
    FilesystemTransport,
    InjectedFault,
    InjectedWorkerCrash,
    SocketTransport,
    TransportError,
)
from repro.cluster.coordinator import ClusterPlan, done_path, lease_path
from repro.cluster.serve import ClusterCoordinatorServer
from repro.runtime import ScenarioSpec, SweepRunner, single_kind_scenarios
from repro.runtime.cache import atomic_write_text
from repro.runtime.sweep import execute_scenario

DURATION = 0.05


def grid(count=None, backend="analytic") -> list[ScenarioSpec]:
    specs = single_kind_scenarios(
        "Lab", kinds=("NL", "CK", "MD"), loads=("Low", "High"),
        max_pairs_options=(1, 3), origins=("A", "B"),
        include_md_k255=False, attempt_batch_size=40, backend=backend)
    return specs if count is None else specs[:count]


def plan_cluster(tmp_path, specs, **kwargs) -> ClusterCoordinator:
    kwargs.setdefault("master_seed", 77)
    kwargs.setdefault("num_shards", 3)
    coordinator = ClusterCoordinator(specs, DURATION, tmp_path / "cluster",
                                     **kwargs)
    coordinator.write_plan()
    return coordinator


# --------------------------------------------------------------------------- #
# Satellite: atomic_write_text is thread-safe (pid alone is not a discriminator)
# --------------------------------------------------------------------------- #
class TestAtomicWriteText:
    def test_concurrent_threads_never_tear_atomic_writes(self, tmp_path):
        """Two coordinator handler threads share a pid; their tmp files must
        not collide.  Pre-PR both threads used ``<name>.<pid>.tmp``: one
        thread's rename deletes the tmp the other is about to rename
        (FileNotFoundError) or renames the other's half-written text."""
        target = tmp_path / "state.json"
        rounds = 200
        barrier = threading.Barrier(2)
        errors: list[BaseException] = []

        def writer(worker: int) -> None:
            try:
                for round_number in range(rounds):
                    barrier.wait()
                    atomic_write_text(target, json.dumps(
                        {"worker": worker, "round": round_number}))
            except BaseException as error:  # noqa: BLE001 - recorded for assert
                errors.append(error)

        threads = [threading.Thread(target=writer, args=(n,))
                   for n in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, f"atomic_write_text tore under threads: {errors!r}"
        final = json.loads(target.read_text())  # never torn, always parses
        assert final["round"] == rounds - 1
        assert not list(tmp_path.glob("*.tmp"))  # no leaked tmp files

    def test_durable_write_fsyncs_and_replaces(self, tmp_path):
        target = tmp_path / "done.json"
        atomic_write_text(target, '{"ok": true}', durable=True)
        atomic_write_text(target, '{"ok": false}', durable=True)
        assert json.loads(target.read_text()) == {"ok": False}
        assert not list(tmp_path.glob("*.tmp"))


# --------------------------------------------------------------------------- #
# Fault schedule determinism
# --------------------------------------------------------------------------- #
class TestFaultSchedule:
    def rates(self):
        return dict(drop=0.3, reset=0.3, duplicate=0.3, replay=0.2,
                    delay=0.2, delay_seconds=0.0)

    def test_same_seed_same_decisions_regardless_of_interleaving(self):
        first = FaultSchedule(seed=42, **self.rates())
        second = FaultSchedule(seed=42, **self.rates())
        # Consume the two schedules in different op interleavings: each
        # decision depends only on (seed, op, per-op call number).
        a = [first.decide("claim") for _ in range(20)]
        a += [first.decide("submit") for _ in range(20)]
        b = []
        for _ in range(20):
            b.append(second.decide("claim"))
            second.decide("submit")
        assert a[:20] == b
        third = FaultSchedule(seed=43, **self.rates())
        assert [third.decide("claim") for _ in range(20)] != a[:20]

    def test_injected_log_and_replayable_description(self):
        schedule = FaultSchedule(seed=7, drop=1.0)
        with pytest.raises(InjectedFault):
            FaultyTransport(_ScriptedTransport(), schedule,
                            max_retries=2).snapshot()
        description = schedule.to_dict()
        assert description["seed"] == 7
        assert description["rates"]["drop"] == 1.0
        assert len(description["injected"]) == 3  # initial try + 2 retries
        assert all(entry["op"] == "snapshot" and "drop" in entry["faults"]
                   for entry in description["injected"])

    def test_crash_point_and_mode_validation(self):
        schedule = FaultSchedule(seed=1, crash_op="claim", crash_call=2,
                                 crash_mode="before")
        inner = _ScriptedTransport()
        faulty = FaultyTransport(inner, schedule)
        assert faulty.try_claim(0, "w") is True
        with pytest.raises(InjectedWorkerCrash):
            faulty.try_claim(1, "w")
        assert inner.calls.count("claim") == 1  # crash *before* delivery
        with pytest.raises(ValueError, match="crash_mode"):
            FaultSchedule(seed=1, crash_mode="sideways")


class _ScriptedTransport:
    """Minimal transport double recording deliveries."""

    kind = "scripted"
    plan = None

    def __init__(self):
        self.calls: list[str] = []

    def register_worker(self, worker_id, shard):
        self.calls.append("register")
        return 0

    def snapshot(self):
        self.calls.append("snapshot")
        return "snapshot"

    def try_claim(self, index, worker_id):
        self.calls.append("claim")
        return True

    def heartbeat(self, index, worker_id):
        self.calls.append("heartbeat")
        return True

    def submit_result(self, worker_id, index, outcome, attempt=0):
        self.calls.append("submit")

    def close(self):
        self.calls.append("close")


class TestFaultyTransportUnit:
    def test_drop_is_retried_until_delivered(self):
        inner = _ScriptedTransport()
        # drop=1.0 on every delivery except: make only the first two drop by
        # checking the retry budget instead — with drop=1.0 and 3 retries the
        # op never lands and the fault surfaces as a TransportError subclass.
        schedule = FaultSchedule(seed=5, drop=1.0)
        faulty = FaultyTransport(inner, schedule, max_retries=3,
                                 retry_delay=0.0)
        with pytest.raises(TransportError):
            faulty.snapshot()
        assert inner.calls == []  # dropped requests were never delivered

    def test_reset_applies_then_retries(self):
        inner = _ScriptedTransport()
        schedule = FaultSchedule(seed=5, reset=1.0)
        faulty = FaultyTransport(inner, schedule, max_retries=3,
                                 retry_delay=0.0)
        with pytest.raises(TransportError):
            faulty.try_claim(0, "w")
        # Every attempt was *applied* (reset loses only the response) —
        # exactly the ambiguity idempotent claims absorb.
        assert inner.calls == ["claim"] * 4

    def test_duplicate_and_stale_replay_redeliver(self):
        inner = _ScriptedTransport()
        schedule = FaultSchedule(seed=5, duplicate=1.0)
        FaultyTransport(inner, schedule).try_claim(0, "w")
        assert inner.calls == ["claim", "claim"]

        inner = _ScriptedTransport()
        schedule = FaultSchedule(seed=5, replay=1.0)
        faulty = FaultyTransport(inner, schedule)
        faulty.try_claim(0, "w")
        faulty.snapshot()  # replays the stale claim after delivering
        assert inner.calls == ["claim", "snapshot", "claim"]


# --------------------------------------------------------------------------- #
# Idempotent operations
# --------------------------------------------------------------------------- #
class TestIdempotentOps:
    def test_duplicate_submit_writes_one_sink_record(self, tmp_path):
        specs = grid(count=4)
        coordinator = plan_cluster(tmp_path, specs)
        transport = FilesystemTransport(coordinator.cluster_dir)
        assert transport.try_claim(0, "w")
        outcome = execute_scenario(specs[0], transport.plan.seeds[0],
                                   DURATION)
        # The same delivery lands three times (a duplicated frame plus a
        # retry after a reset): one sink record, one done marker.
        for _ in range(3):
            transport.submit_result("w", 0, outcome, attempt=1)
        transport.close()
        part = coordinator.cluster_dir / "results" / "part-w.jsonl"
        records = [json.loads(line) for line in
                   part.read_text().splitlines()[1:] if line.strip()]
        assert len(records) == 1
        assert records[0]["index"] == 0

    def test_submit_after_done_is_a_noop(self, tmp_path):
        specs = grid(count=4)
        coordinator = plan_cluster(tmp_path, specs)
        first = FilesystemTransport(coordinator.cluster_dir)
        second = FilesystemTransport(coordinator.cluster_dir)
        outcome = execute_scenario(specs[0], first.plan.seeds[0], DURATION)
        first.submit_result("a", 0, outcome, attempt=1)
        # A displaced peer submitting late (done marker already durable)
        # must not open a second part for the same scenario.
        second.submit_result("b", 0, outcome, attempt=1)
        first.close()
        second.close()
        results = coordinator.cluster_dir / "results"
        assert not (results / "part-b.jsonl").exists()
        merged = coordinator.merge(require_complete=False)
        assert merged.outcomes == [outcome]

    def test_reclaim_by_owner_is_idempotent(self, tmp_path):
        """A retried claim whose first delivery was applied re-grants to the
        owner — pre-PR it was refused as 'someone holds the lease'."""
        specs = grid(count=4)
        coordinator = plan_cluster(tmp_path, specs)
        transport = FilesystemTransport(coordinator.cluster_dir)
        assert transport.try_claim(0, "w")
        assert transport.try_claim(0, "w")  # duplicate delivery: re-granted
        assert not transport.try_claim(0, "other")  # non-owners still lose

    def test_register_is_idempotent(self, tmp_path):
        specs = grid(count=4)
        coordinator = plan_cluster(tmp_path, specs)
        transport = FilesystemTransport(coordinator.cluster_dir)
        shard = transport.register_worker("w", None)
        # A retried register must return the recorded shard, not round-robin
        # the duplicate onto the next one.
        assert transport.register_worker("w", None) == shard
        assert transport.register_worker("w", shard) == shard
        assert transport.registered_workers() == 1


# --------------------------------------------------------------------------- #
# Skew-safe leases
# --------------------------------------------------------------------------- #
class TestClockSkew:
    def test_clock_skew_does_not_fake_a_stale_lease(self, tmp_path):
        """A reader 2s ahead of the lease writer must not observe a healthy
        lease as stale.  Pre-PR there was no tolerance: with a 1s lease
        timeout the skew alone aged the lease past staleness and the rescuer
        'took over' a live worker's scenario."""
        specs = grid(count=4)
        coordinator = plan_cluster(tmp_path, specs, lease_timeout=1.0,
                                   clock_skew_tolerance=5.0)
        writer = FilesystemTransport(coordinator.cluster_dir)
        reader = FilesystemTransport(coordinator.cluster_dir,
                                     clock=lambda: time.time() + 2.0)
        assert writer.try_claim(0, "healthy")
        assert writer.heartbeat(0, "healthy")
        snapshot = reader.snapshot()
        assert not snapshot.is_available(0, reader.plan.lease_timeout), \
            "2s of clock skew faked a stale lease"
        assert not reader.try_claim(0, "usurper")
        assert writer.heartbeat(0, "healthy")  # the owner was never displaced

    def test_genuinely_stale_lease_is_still_reclaimed_under_skew(
            self, tmp_path):
        specs = grid(count=4)
        coordinator = plan_cluster(tmp_path, specs, lease_timeout=1.0,
                                   clock_skew_tolerance=5.0)
        writer = FilesystemTransport(coordinator.cluster_dir)
        reader = FilesystemTransport(coordinator.cluster_dir,
                                     clock=lambda: time.time() + 2.0)
        assert writer.try_claim(0, "doomed")
        lease = lease_path(coordinator.cluster_dir, 0)
        past = time.time() - 3600.0
        os.utime(lease, (past, past))
        assert reader.snapshot().is_available(0, reader.plan.lease_timeout)
        assert reader.try_claim(0, "rescuer")
        assert not writer.heartbeat(0, "doomed")

    def test_plan_round_trips_the_skew_tolerance(self, tmp_path):
        specs = grid(count=4)
        coordinator = plan_cluster(tmp_path, specs,
                                   clock_skew_tolerance=7.5)
        plan = ClusterPlan.load(coordinator.cluster_dir)
        assert plan.clock_skew_tolerance == 7.5
        # Pre-PR plan documents (no tolerance field) load with the default.
        document = plan.to_dict()
        del document["clock_skew_tolerance"]
        assert ClusterPlan.from_dict(document).clock_skew_tolerance == 5.0


# --------------------------------------------------------------------------- #
# Heartbeat loss aborts the displaced worker
# --------------------------------------------------------------------------- #
class TestHeartbeatLoss:
    def test_displaced_worker_aborts_instead_of_double_submitting(
            self, tmp_path, monkeypatch):
        """The stale-takeover peer and the resurrecting original both finish
        the same scenario; only the peer may submit.  Pre-PR the original's
        heartbeat thread noticed the takeover and silently stopped, and the
        original submitted anyway — double-counting the scenario."""
        specs = grid(count=4)
        # Tiny lease timeout: the heartbeat interval (timeout / 3, floored
        # at 50ms) fires several times during the slowed execution below.
        coordinator = plan_cluster(tmp_path, specs, lease_timeout=0.15,
                                   clock_skew_tolerance=0.0)
        rescuer = FilesystemTransport(coordinator.cluster_dir)
        takeover_done = threading.Event()

        import repro.cluster.worker as worker_module
        real_execute = worker_module.execute_scenario

        def execute_and_get_displaced(spec, seed, duration):
            outcome = real_execute(spec, seed, duration)
            if not takeover_done.is_set():
                # While the original is "still computing": its lease goes
                # stale and the rescuer takes it over and submits.  The
                # original's heartbeat thread may refresh the lease between
                # the backdate and the claim, so retry the pair.
                index = rescuer.plan.specs.index(spec)
                lease = lease_path(coordinator.cluster_dir, index)
                past = time.time() - 3600.0
                for _ in range(50):
                    os.utime(lease, (past, past))
                    if rescuer.try_claim(index, "rescuer"):
                        break
                else:
                    raise AssertionError("rescuer could not take the lease")
                rescuer.submit_result("rescuer", index, outcome, attempt=1)
                takeover_done.set()
                time.sleep(0.4)  # several heartbeat intervals
            return outcome

        monkeypatch.setattr(worker_module, "execute_scenario",
                            execute_and_get_displaced)
        original = ClusterWorker(FilesystemTransport(coordinator.cluster_dir),
                                 "original", shard=0, steal=False,
                                 cache_dir=None)
        index = original.step()
        assert index is not None
        assert original.aborted == [index]
        assert original.executed == []  # the displaced result was discarded
        original.close()
        rescuer.close()
        results = coordinator.cluster_dir / "results"
        assert (results / "part-rescuer.jsonl").exists()
        assert not (results / "part-original.jsonl").exists(), \
            "displaced worker double-submitted"
        merged = coordinator.merge(require_complete=False)
        assert len(merged.outcomes) == 1

    def test_transient_heartbeat_outage_does_not_abort(self, tmp_path):
        from repro.cluster.worker import _Heartbeat

        class FlakyTransport:
            def __init__(self):
                self.beats = 0

            def heartbeat(self, index, worker_id):
                self.beats += 1
                if self.beats == 1:
                    raise TransportError("blip")
                return True

        transport = FlakyTransport()
        with _Heartbeat(transport, 0, "w", interval=0.05) as heartbeat:
            deadline = time.monotonic() + 2.0
            while transport.beats < 3 and time.monotonic() < deadline:
                time.sleep(0.01)
        assert transport.beats >= 3  # kept beating through the outage
        assert not heartbeat.lease_lost.is_set()


# --------------------------------------------------------------------------- #
# Satellite: connect deadline clamping
# --------------------------------------------------------------------------- #
class TestConnectDeadline:
    def test_connect_deadline_is_clamped(self):
        started = time.monotonic()
        with pytest.raises(TransportError,
                           match=r"after \d+ attempt\(s\) over \d+\.\d+s"):
            SocketTransport("127.0.0.1:1", connect_retry=0.25)
        elapsed = time.monotonic() - started
        # Pre-PR the loop slept a fixed 0.2s past the deadline and made an
        # extra attempt; the clamped loop stops at the budget (plus one
        # attempt's latency against a closed port, which is microseconds).
        assert elapsed < 0.6, f"connect retry overshot its budget: {elapsed}"

    def test_zero_budget_fails_after_exactly_one_attempt(self):
        with pytest.raises(TransportError, match=r"after 1 attempt"):
            SocketTransport("127.0.0.1:1", connect_retry=0.0)


# --------------------------------------------------------------------------- #
# Acceptance: seeded faulted sweep == serial, both transports
# --------------------------------------------------------------------------- #
class TestFaultedSweepAcceptance:
    """Drops + resets + duplicates + stale replays + delays + one
    mid-scenario worker crash + 2s simulated clock skew, over both
    transports — the merged result must be field-for-field identical to a
    serial ``SweepRunner`` run."""

    def worker_schedules(self, seed):
        crashy = FaultSchedule(seed=seed, drop=0.1, duplicate=0.1,
                               delay=0.2, delay_seconds=0.001,
                               crash_op="claim", crash_call=2,
                               crash_mode="after", clock_skew=2.0)
        chaotic = FaultSchedule(seed=seed + 1, drop=0.15, reset=0.15,
                                duplicate=0.15, replay=0.1, delay=0.2,
                                delay_seconds=0.001, clock_skew=2.0)
        skewed = FaultSchedule(seed=seed + 2, drop=0.1, reset=0.1,
                               duplicate=0.1, replay=0.1, clock_skew=-2.0)
        return [crashy, chaotic, skewed]

    @pytest.mark.parametrize("transport_kind", ["filesystem", "socket"])
    def test_faulted_sweep_equals_serial(self, tmp_path, transport_kind):
        specs = grid()
        assert len(specs) >= 24
        serial = SweepRunner(specs, DURATION, master_seed=77).run()
        coordinator = plan_cluster(tmp_path, specs, lease_timeout=120.0,
                                   clock_skew_tolerance=5.0)
        server = None
        if transport_kind == "socket":
            server = ClusterCoordinatorServer(coordinator)
            server.start_background()

        def make_transport(schedule):
            if transport_kind == "socket":
                return FaultyTransport.over_socket(server.address, schedule,
                                                   retry_delay=0.0)
            return FaultyTransport.over_filesystem(coordinator.cluster_dir,
                                                   schedule, retry_delay=0.0)

        schedules = self.worker_schedules(seed=20260808)
        workers = [ClusterWorker(make_transport(schedule), f"w{i}", shard=i,
                                 cache_dir=None)
                   for i, schedule in enumerate(schedules)]
        crashed: set[int] = set()
        try:
            for _ in range(800):
                progressed = False
                for position, worker in enumerate(workers):
                    if position in crashed:
                        continue
                    try:
                        if worker.step() is not None:
                            progressed = True
                    except InjectedWorkerCrash:
                        crashed.add(position)  # died holding its lease
                        progressed = True
                    except TransportError:
                        progressed = True  # injected outage burst; retry
                if coordinator.is_complete():
                    break
                if not progressed:
                    aged = self.backdate_stale_leases(coordinator)
                    assert aged > 0, "deadlock: no progress, no stale lease"
            else:
                raise AssertionError("faulted grid did not complete")
        finally:
            for worker in workers:
                worker.close()
            if server is not None:
                server.stop()

        assert crashed == {0}, "the scheduled crash did not fire"
        assert any(schedule.injected for schedule in schedules)
        merged = coordinator.merge()
        assert merged.master_seed == serial.master_seed
        assert merged.duration == serial.duration
        assert merged.outcomes == serial.outcomes
        assert merged == serial

    @staticmethod
    def backdate_stale_leases(coordinator, seconds=3600.0) -> int:
        past = time.time() - seconds
        aged = 0
        for lease in (coordinator.cluster_dir / "tasks").glob("*.lease"):
            if not done_path(coordinator.cluster_dir,
                             int(lease.stem)).exists():
                os.utime(lease, (past, past))
                aged += 1
        return aged
